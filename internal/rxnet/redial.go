package rxnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"time"
)

// Backoff computes capped exponential redial delays with jitter:
// attempt n (1-based) waits Base<<(n-1) capped at Max, scaled by a
// uniform factor in [0.5, 1.5) so a fleet of retrying peers does not
// thundering-herd a restarted server. The zero value selects
// 500 ms / 15 s.
type Backoff struct {
	// Base is the first-attempt delay. Zero selects 500 ms.
	Base time.Duration
	// Max caps the exponential growth. Zero selects 15 s.
	Max time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 500 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	return b
}

// minBackoffDelay floors the pre-jitter delay. rand.Int63n panics on
// a non-positive argument, so the delay must stay strictly positive
// through every degenerate config (sub-millisecond Base, a doubling
// that overflows int64 on large attempt counts). Degenerate configs
// with Max below this floor may therefore see delays slightly above
// their Max — a millisecond of extra patience beats a panic.
const minBackoffDelay = time.Millisecond

// maxBackoffDelay caps the pre-jitter delay: the jitter scales by up
// to 1.5x, so anything above MaxInt64/2 could overflow int64 and come
// out negative. Half of MaxInt64 is ~146 years — not a real cap.
const maxBackoffDelay = time.Duration(math.MaxInt64 / 2)

// Delay returns the jittered delay before attempt n (1-based).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 1; i < attempt && d < b.Max; i++ {
		d *= 2
		if d <= 0 {
			// Doubling overflowed (huge Max, many attempts): the intent
			// was "as long as allowed", so cap and stop.
			d = b.Max
			break
		}
	}
	if d > b.Max {
		d = b.Max
	}
	if d < minBackoffDelay {
		d = minBackoffDelay
	}
	if d > maxBackoffDelay {
		d = maxBackoffDelay
	}
	// Uniform jitter in [0.5d, 1.5d).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// RedialConfig tunes a reliable node client (DialReliable).
type RedialConfig struct {
	// Backoff paces reconnect attempts after a connection failure.
	Backoff Backoff
	// MaxDowntime bounds one reconnect episode: if the server stays
	// unreachable this long, the pending write fails with the dial
	// error. Zero selects 30 s; negative retries forever.
	MaxDowntime time.Duration
	// FlowControl starts a control reader that honors server-sent
	// Throttle frames: StreamChunk stalls while paused (or sheds, see
	// ShedWhilePaused). A flow-controlled node must not use Publish —
	// the reader would consume its acks.
	FlowControl bool
	// ShedWhilePaused makes a paused StreamChunk discard the chunk
	// (advancing the stream counters so the gap stays visible to the
	// server's continuity cursor, and counting it in Shed) instead of
	// blocking until resume — edge-side load shedding.
	ShedWhilePaused bool
	// Addrs lists additional server addresses beyond the one passed to
	// DialReliable. When a reconnect episode cannot reach the current
	// address, the node rotates through the list — transparent router
	// failover. Multi-address nodes keep a bounded per-stream resend
	// buffer (see ResendBytes) and replay its tail as SampleReplay
	// frames on every reconnect, so a failover target that never saw
	// the stream's recent chunks receives them without a continuity
	// reset; receivers dedup anything the old server already
	// delivered. A multi-address node must not use Publish (the
	// control reader would consume its acks).
	Addrs []string
	// ResendBytes bounds each stream's resend buffer. Zero selects
	// 256 KiB per stream when Addrs is non-empty, otherwise disabled;
	// negative disables resend buffering entirely.
	ResendBytes int
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (c RedialConfig) withDefaults() RedialConfig {
	if c.MaxDowntime == 0 {
		c.MaxDowntime = 30 * time.Second
	}
	if c.ResendBytes == 0 && len(c.Addrs) > 0 {
		c.ResendBytes = 256 << 10
	}
	if c.ResendBytes < 0 {
		c.ResendBytes = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ErrNodeClosed reports a write on a closed reliable node.
var ErrNodeClosed = errors.New("rxnet: node closed")

// DialReliable connects a node like Dial but survives server
// restarts: writes that hit a dead connection redial with capped
// exponential backoff and jitter, re-announce the Hello, and resume
// every stream's chunk numbering — a router bounce costs at most one
// counted continuity reset, never a silent splice. With
// cfg.FlowControl it also honors server Throttle frames (cluster
// backpressure). The initial dial retries under the same policy, so
// nodes may start before their router.
func DialReliable(ctx context.Context, addr string, hello Hello, cfg RedialConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	helloBody, err := MarshalHello(hello)
	if err != nil {
		return nil, err
	}
	addrs := []string{addr}
	for _, a := range cfg.Addrs {
		if a != "" && a != addr {
			addrs = append(addrs, a)
		}
	}
	n := &Node{
		hello:     hello,
		addr:      addr,
		addrs:     addrs,
		rcfg:      &cfg,
		helloBody: helloBody,
		rctx:      ctx,
		closedCh:  make(chan struct{}),
		resumeCh:  make(chan struct{}),
	}
	n.mu.Lock()
	err = n.reconnectLocked(0)
	n.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// The control reader also drives reconnects when the read side sees
	// the connection die first, which is how a multi-address node
	// notices a dead router before its next write — so it runs for
	// failover nodes too, not just flow-controlled ones.
	if cfg.FlowControl || len(addrs) > 1 {
		n.readerWG.Add(1)
		go n.controlLoop()
	}
	return n, nil
}

// Resent reports how many buffered chunks a multi-address node has
// retransmitted as SampleReplay frames (on reconnect, or answering a
// server StreamNack).
func (n *Node) Resent() int64 { return n.resent.Load() }

// Redials reports how many times a reliable node has re-established
// its connection (the initial dial not counted).
func (n *Node) Redials() int64 { return n.redials.Load() }

// Shed reports how many chunks a ShedWhilePaused node discarded while
// the server held it paused.
func (n *Node) Shed() int64 { return n.shedCnt.Load() }

// Paused reports whether the server currently holds this
// flow-controlled node paused.
func (n *Node) Paused() bool {
	if n.rcfg == nil {
		return false
	}
	n.pmu.Lock()
	defer n.pmu.Unlock()
	return n.paused
}

// reconnectLocked re-establishes the connection if generation gen is
// still current (a concurrent caller may have beaten us to it),
// retrying with backoff until MaxDowntime. Callers hold n.mu.
func (n *Node) reconnectLocked(gen int) error {
	if n.gen != gen {
		return nil // already reconnected by another path
	}
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	var deadline time.Time
	if n.rcfg.MaxDowntime > 0 {
		deadline = time.Now().Add(n.rcfg.MaxDowntime)
	}
	for attempt := 1; ; attempt++ {
		select {
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		default:
		}
		conn, err := n.dialOnce()
		if err == nil {
			// Retransmit the buffered stream tails on the fresh
			// connection BEFORE any live chunk can follow: a failover
			// target that never saw this stream receives the missing
			// chunks in TCP order ahead of everything else, and a server
			// that already consumed them discards the marked replays
			// against its cursor. A resend failure is a dial failure —
			// the connection is already dead.
			if rerr := n.resendSavedOn(conn); rerr != nil {
				conn.Close()
				err = rerr
			} else {
				n.conn = conn
				n.gen++
				if n.gen > 1 {
					n.redials.Add(1)
					n.rcfg.Logf("rxnet: node %d reconnected to %s (attempt %d)", n.hello.NodeID, n.curAddr(), attempt)
				}
				return nil
			}
		}
		// Rotate to the next configured server for the next attempt —
		// transparent failover when the current router is gone.
		if len(n.addrs) > 1 {
			n.addrIdx = (n.addrIdx + 1) % len(n.addrs)
		}
		delay := n.rcfg.Backoff.Delay(attempt)
		if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
			return err
		}
		select {
		case <-time.After(delay):
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		}
	}
}

// curAddr is the address the rotation currently points at. Callers
// hold n.mu.
func (n *Node) curAddr() string {
	if len(n.addrs) == 0 {
		return n.addr
	}
	return n.addrs[n.addrIdx%len(n.addrs)]
}

// dialOnce makes one connection attempt and sends the Hello.
func (n *Node) dialOnce() (net.Conn, error) {
	var d net.Dialer
	dctx, cancel := context.WithTimeout(n.rctx, 5*time.Second)
	defer cancel()
	conn, err := d.DialContext(dctx, "tcp", n.curAddr())
	if err != nil {
		return nil, err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, n.helloBody); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// writeChunkLocked writes one chunk frame, redialing and retrying on
// failure for reliable nodes. Callers hold n.mu.
func (n *Node) writeChunkLocked(body []byte) error {
	for {
		gen := n.gen
		if err := n.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err == nil {
			if err := WriteFrame(n.conn, FrameSampleChunk, body); err == nil {
				return nil
			} else if n.rcfg == nil {
				return err
			}
		} else if n.rcfg == nil {
			return err
		}
		// The connection died under the write: reconnect and resend.
		// Whether the server consumed the failed chunk is unknowable
		// without acks; a duplicate surfaces as a counted continuity
		// reset on the server, never a silent splice.
		if err := n.reconnectLocked(gen); err != nil {
			return err
		}
	}
}

// saveChunkLocked copies one sent chunk's marshaled body into the
// stream's bounded resend buffer, trimming the oldest entries past
// the byte budget. Callers hold n.mu.
func (n *Node) saveChunkLocked(st *streamState, seq uint32, body []byte) {
	limit := n.rcfg.ResendBytes
	st.saved = append(st.saved, savedBody{seq: seq, body: append([]byte(nil), body...)})
	st.savedBytes += len(body)
	drop := 0
	for st.savedBytes > limit && drop < len(st.saved)-1 {
		st.savedBytes -= len(st.saved[drop].body)
		drop++
	}
	if drop > 0 {
		st.saved = append(st.saved[:0], st.saved[drop:]...)
	}
}

// resendSavedOn retransmits every stream's buffered tail on conn as
// SampleReplay frames. Callers hold n.mu; conn is not yet installed
// as n.conn, so a failure leaves the node's state untouched.
func (n *Node) resendSavedOn(conn net.Conn) error {
	for _, st := range n.streams {
		for _, sb := range st.saved {
			if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
				return err
			}
			if err := WriteFrame(conn, FrameSampleReplay, sb.body); err != nil {
				return err
			}
			n.resent.Add(1)
		}
	}
	return nil
}

// handleStreamNack answers a server StreamNack by retransmitting the
// buffered chunks past the server's cursor as SampleReplay frames —
// how a failover router that never saw the stream rebuilds it without
// a continuity reset.
func (n *Node) handleStreamNack(nk StreamNack) {
	if SessionNodeID(nk.Session) != n.hello.NodeID {
		return
	}
	streamID := SessionStreamID(nk.Session)
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.streams[streamID]
	if st == nil || len(st.saved) == 0 || n.conn == nil {
		return
	}
	for _, sb := range st.saved {
		if !SeqLess(nk.LastSeq, sb.seq) {
			continue // server already consumed it
		}
		if err := n.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return
		}
		if err := WriteFrame(n.conn, FrameSampleReplay, sb.body); err != nil {
			// The connection died mid-resend; the next write or the
			// control reader reconnects and replays the full tail.
			return
		}
		n.resent.Add(1)
	}
}

// pauseGate blocks while a flow-controlled (non-shedding) node is
// paused by the server. Advisory: a pause that lands after the gate
// delays only until the next chunk.
func (n *Node) pauseGate() error {
	if n.rcfg == nil || !n.rcfg.FlowControl || n.rcfg.ShedWhilePaused {
		return nil
	}
	for {
		n.pmu.Lock()
		if !n.paused {
			n.pmu.Unlock()
			return nil
		}
		ch := n.resumeCh
		n.pmu.Unlock()
		select {
		case <-ch:
		case <-n.closedCh:
			return ErrNodeClosed
		case <-n.rctx.Done():
			return n.rctx.Err()
		}
	}
}

// shedGateLocked reports whether a paused shedding node should drop
// the chunk in hand. Callers hold n.mu; counters still advance so the
// server's continuity cursor sees the gap.
func (n *Node) shedGateLocked() bool {
	if n.rcfg == nil || !n.rcfg.FlowControl || !n.rcfg.ShedWhilePaused {
		return false
	}
	n.pmu.Lock()
	paused := n.paused
	n.pmu.Unlock()
	if paused {
		n.shedCnt.Add(1)
	}
	return paused
}

// controlLoop consumes server-to-node control frames (Throttle
// pause/resume, drain notices) and drives reconnects when the read
// side sees the connection die first.
func (n *Node) controlLoop() {
	defer n.readerWG.Done()
	for {
		n.mu.Lock()
		conn, gen := n.conn, n.gen
		n.mu.Unlock()
		if conn == nil {
			return
		}
		conn.SetReadDeadline(time.Time{})
		t, body, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-n.closedCh:
				return
			case <-n.rctx.Done():
				return
			default:
			}
			n.mu.Lock()
			rerr := n.reconnectLocked(gen)
			n.mu.Unlock()
			if rerr != nil {
				n.rcfg.Logf("rxnet: node %d control reader giving up: %v", n.hello.NodeID, rerr)
				return
			}
			// A reconnect lands on a fresh server conn with no pause
			// state; release any stalled writer.
			n.setPaused(false)
			continue
		}
		switch t {
		case FrameThrottle:
			th, err := UnmarshalThrottle(body)
			if err != nil {
				n.rcfg.Logf("rxnet: node %d bad throttle: %v", n.hello.NodeID, err)
				continue
			}
			n.setPaused(th.Paused)
		case FrameStreamNack:
			nk, err := UnmarshalStreamNack(body)
			if err != nil {
				n.rcfg.Logf("rxnet: node %d bad stream nack: %v", n.hello.NodeID, err)
				continue
			}
			n.handleStreamNack(nk)
		default:
			// Drain notices and future control frames are advisory for
			// a sending node; ignore.
		}
	}
}

// setPaused flips the flow-control state, waking blocked writers on
// resume.
func (n *Node) setPaused(paused bool) {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if paused == n.paused {
		return
	}
	n.paused = paused
	if paused {
		n.resumeCh = make(chan struct{})
	} else {
		close(n.resumeCh)
	}
}
