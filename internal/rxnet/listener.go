package rxnet

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/telemetry"
)

// ChunkEvent is one raw-sample delivery surfaced by a ChunkListener:
// the wire chunk resolved to an engine session key, with stream
// continuity already checked. It is the receiver-network flavor of a
// pipeline source chunk.
type ChunkEvent struct {
	// Session is the (node, stream) pair folded into one session key
	// (SampleChunk.SessionKey).
	Session uint64
	// NodeID and StreamID identify the sender.
	NodeID, StreamID uint32
	// Fs is the stream's sample rate (Hz).
	Fs float64
	// Samples are the chunk's RSS values.
	Samples []float64
	// Reset means the stream restarted or skipped (reconnect, gap):
	// the consumer must end any open decode session for Session before
	// feeding these samples, so epochs cannot splice together.
	Reset bool
	// End means the stream is over (a cluster router moved it to
	// another engine, or this engine force-redirected it): the
	// consumer must flush and release the decode session. Samples is
	// empty on End events.
	End bool
	// Buf, when non-nil, is the pooled buffer backing Samples. The
	// consumer owns one reference and must call Release (directly or
	// via ChunkEvent.Release) once the samples have been consumed —
	// e.g. copied into an engine session ring. Ignoring it is safe
	// (the buffer falls to the garbage collector, costing only a pool
	// miss), but a consumer must never retain Samples past Release.
	Buf *SampleBuf
}

// Release returns the event's pooled sample buffer, if any. Safe on
// events without one (End events, hand-built test events).
func (ev ChunkEvent) Release() { ev.Buf.Release() }

// lconn is one accepted connection with a serialized write path, so
// control frames (drain notices, NACKs) can be sent from goroutines
// other than the connection's reader.
type lconn struct {
	c   net.Conn
	wmu sync.Mutex
}

func (lc *lconn) writeFrame(t FrameType, body []byte) error {
	lc.wmu.Lock()
	defer lc.wmu.Unlock()
	if err := lc.c.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	return WriteFrame(lc.c, t, body)
}

// ChunkListener accepts receiver-node connections speaking the rxnet
// frame protocol and surfaces their raw SampleChunk frames as a
// channel of ChunkEvents — the transport half of the aggregator's
// streaming path, split out so a decode pipeline (not the aggregator)
// can own the DSP. Hello frames are surfaced on a side channel for
// node registration; Detection frames are rejected (nodes that decode
// locally should talk to an Aggregator instead).
type ChunkListener struct {
	ln         net.Listener
	out        chan ChunkEvent
	hellos     chan Hello
	drainReq   chan struct{}
	logf       func(format string, args ...any)
	dropOnFull bool
	paceIdle   time.Duration
	dropped    atomic.Int64
	received   atomic.Int64
	refusedCnt atomic.Int64
	duplicates atomic.Int64
	nacksSent  atomic.Int64
	acksSent   atomic.Int64
	endsRecv   atomic.Int64
	resets     atomic.Int64
	throttles  atomic.Int64
	paceRatio  atomic.Uint64 // float64 bits: max observed chunkGap/idle
	paceWarned atomic.Bool

	mu        sync.Mutex
	cursors   map[uint64]*streamCursor
	refused   map[uint64]bool
	conns     map[*lconn]struct{}
	draining  bool
	throttled bool
	reg       *telemetry.Registry
	frameErr  *telemetry.Counter
	nodeTel   map[uint32]*telemetry.Counter

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// streamCursor extends the shared chunk-continuity cursor with the
// connection the stream is arriving on, so a force-redirect can NACK
// the right peer.
type streamCursor struct {
	chunkCursor
	src *lconn
}

// ChunkListenerConfig tunes a ChunkListener beyond the address.
type ChunkListenerConfig struct {
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// QueueDepth bounds the Chunks channel (the ingest queue between
	// the network readers and the consumer). Zero selects 64.
	QueueDepth int
	// DropOnFull switches a full ingest queue from backpressure
	// (connection readers block, TCP flow control pushes back on the
	// nodes — the lossless default) to lossy ingest: the incoming
	// chunk is discarded and counted in DroppedChunks. Use it when a
	// stalled consumer must not stall the whole receiver network.
	DropOnFull bool
	// Metrics registers the listener's ingest series: per-node
	// pl_rxnet_ingest_bytes_total{node="N"}, pl_rxnet_frame_errors_total,
	// pl_rxnet_dropped_chunks_total and the pl_rxnet_queue_depth gauge.
	Metrics *telemetry.Registry
	// PaceGuardIdle, when positive, is the consumer's session idle
	// timeout: a stream whose per-chunk span (len(Samples)/Fs — the
	// wall-clock gap between paced chunks) reaches it would be
	// idle-evicted mid-stream. The listener warns once and tracks the
	// worst ratio in the pl_rxnet_pace_gap_ratio gauge (>= 1 means the
	// documented timing invariant is violated).
	PaceGuardIdle time.Duration
}

// ListenChunks starts a chunk listener on addr ("host:port"; empty
// port picks an ephemeral one) with default config. logf receives
// diagnostics; nil silences them.
func ListenChunks(addr string, logf func(format string, args ...any)) (*ChunkListener, error) {
	return ListenChunksConfig(addr, ChunkListenerConfig{Logf: logf})
}

// ListenChunksConfig starts a chunk listener with explicit queue and
// telemetry configuration.
func ListenChunksConfig(addr string, cfg ChunkListenerConfig) (*ChunkListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	l := &ChunkListener{
		ln:         ln,
		out:        make(chan ChunkEvent, depth),
		hellos:     make(chan Hello, 64),
		drainReq:   make(chan struct{}, 1),
		logf:       logf,
		dropOnFull: cfg.DropOnFull,
		paceIdle:   cfg.PaceGuardIdle,
		cursors:    make(map[uint64]*streamCursor),
		refused:    make(map[uint64]bool),
		conns:      make(map[*lconn]struct{}),
		closed:     make(chan struct{}),
	}
	if cfg.Metrics != nil {
		l.reg = cfg.Metrics
		l.nodeTel = make(map[uint32]*telemetry.Counter)
		l.frameErr = l.reg.Counter("pl_rxnet_frame_errors_total",
			"Malformed or unexpected frames received from nodes.")
		l.reg.CounterFunc("pl_rxnet_dropped_chunks_total",
			"Sample chunks discarded because the ingest queue was full (DropOnFull).",
			l.dropped.Load)
		l.reg.GaugeFunc("pl_rxnet_queue_depth",
			"Chunk events waiting in the listener's ingest queue.",
			func() float64 { return float64(len(l.out)) })
		l.reg.CounterFunc("pl_cluster_stream_nacks_sent_total",
			"Streams this engine refused and redirected back to the router.",
			l.nacksSent.Load)
		l.reg.CounterFunc("pl_cluster_stream_acks_sent_total",
			"Consumption acks sent upstream (sessions decoded; replay buffers trimmable).",
			l.acksSent.Load)
		l.reg.CounterFunc("pl_cluster_stream_ends_received_total",
			"StreamEnd orders received from a cluster router (handoffs applied).",
			l.endsRecv.Load)
		l.reg.CounterFunc("pl_cluster_refused_chunks_total",
			"Chunks discarded because their stream was NACKed while draining.",
			l.refusedCnt.Load)
		l.reg.CounterFunc("pl_rxnet_stream_resets_total",
			"Streams restarted or spliced with a gap (reconnects, discontinuities, shed chunks).",
			l.resets.Load)
		l.reg.CounterFunc("pl_rxnet_duplicate_chunks_total",
			"Replayed chunks discarded because the stream cursor had already consumed them (router failover retransmissions).",
			l.duplicates.Load)
		l.reg.CounterFunc("pl_cluster_throttle_engaged_total",
			"Times this engine signaled backpressure upstream (pauses only).",
			l.throttles.Load)
		l.reg.GaugeFunc("pl_cluster_throttled",
			"1 while this engine holds its peers paused, else 0.",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				if l.throttled {
					return 1
				}
				return 0
			})
		if cfg.PaceGuardIdle > 0 {
			l.reg.GaugeFunc("pl_rxnet_pace_gap_ratio",
				"Worst observed chunk span / idle timeout; >= 1 means paced streams outlast idle eviction.",
				func() float64 { return math.Float64frombits(l.paceRatio.Load()) })
		}
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// DroppedChunks reports how many sample chunks a DropOnFull listener
// has discarded because the ingest queue was full.
func (l *ChunkListener) DroppedChunks() int64 { return l.dropped.Load() }

// ReceivedChunks reports how many well-formed sample chunks the
// listener has read off its sockets. Every received chunk is either
// delivered on Chunks, counted in DroppedChunks, counted in
// RefusedChunks, or counted in DuplicateChunks — the four always sum
// to ReceivedChunks, including across Close.
func (l *ChunkListener) ReceivedChunks() int64 { return l.received.Load() }

// RefusedChunks reports how many chunks were discarded because their
// stream was NACKed back to the router (drain admission control).
func (l *ChunkListener) RefusedChunks() int64 { return l.refusedCnt.Load() }

// DuplicateChunks reports how many replayed chunks were discarded
// because the stream's continuity cursor had already consumed them —
// the failover-dedup ledger: a router crash replays its unacked
// buffer, a node failover retransmits its saved tail, and everything
// already decoded lands here instead of double-counting as samples.
func (l *ChunkListener) DuplicateChunks() int64 { return l.duplicates.Load() }

// StreamResets reports how many times a stream restarted or spliced
// with a gap (reconnects, discontinuities, shed chunks) — every
// non-graceful loss surfaces here, which is what makes chunk loss
// countable rather than silent.
func (l *ChunkListener) StreamResets() int64 { return l.resets.Load() }

// DrainRequests signals FrameDrainRequest arrivals (an ops client or
// the router asking this engine to drain). The channel is buffered
// and level-triggered: coalesced requests signal once.
func (l *ChunkListener) DrainRequests() <-chan struct{} { return l.drainReq }

// Draining reports whether the listener is refusing new streams.
func (l *ChunkListener) Draining() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.draining
}

// Sessions returns the streams currently flowing through the listener
// (those with a live continuity cursor), for drain bookkeeping.
func (l *ChunkListener) Sessions() []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]uint64, 0, len(l.cursors))
	for k := range l.cursors {
		out = append(out, k)
	}
	return out
}

// Drain switches the listener into drain mode: every connected peer
// is sent a FrameDrain notice, new streams are refused with a NACK
// (the router re-routes them), and in-flight streams keep flowing so
// they can finish losslessly. Idempotent.
func (l *ChunkListener) Drain() {
	l.mu.Lock()
	if l.draining {
		l.mu.Unlock()
		return
	}
	l.draining = true
	conns := make([]*lconn, 0, len(l.conns))
	for lc := range l.conns {
		conns = append(conns, lc)
	}
	l.mu.Unlock()
	body := MarshalDrain(Drain{Draining: true})
	for _, lc := range conns {
		if err := lc.writeFrame(FrameDrain, body); err != nil {
			l.logf("rxnet: drain notice: %v", err)
		}
	}
}

// SetThrottled flips the listener's backpressure signal: every
// connected peer (and every later one) is sent a Throttle frame, so a
// router pauses the contributing nodes — or a directly-connected
// flow-controlled node stalls/sheds itself — until the signal clears.
// Idempotent per state.
func (l *ChunkListener) SetThrottled(paused bool) {
	l.mu.Lock()
	if l.throttled == paused {
		l.mu.Unlock()
		return
	}
	l.throttled = paused
	conns := make([]*lconn, 0, len(l.conns))
	for lc := range l.conns {
		conns = append(conns, lc)
	}
	l.mu.Unlock()
	if paused {
		l.throttles.Add(1)
	}
	body := MarshalThrottle(Throttle{Paused: paused})
	for _, lc := range conns {
		if err := lc.writeFrame(FrameThrottle, body); err != nil {
			l.logf("rxnet: throttle notice: %v", err)
		}
	}
}

// Throttled reports whether the listener currently signals
// backpressure.
func (l *ChunkListener) Throttled() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.throttled
}

// paceGuard checks one chunk against the consumer's idle timeout: a
// paced stream whose chunks each span >= the idle timeout will be
// idle-evicted mid-stream (the documented timing invariant). Tracks
// the worst ratio and warns once.
func (l *ChunkListener) paceGuard(c SampleChunk) {
	if l.paceIdle <= 0 || c.Fs <= 0 || len(c.Samples) == 0 {
		return
	}
	gap := float64(len(c.Samples)) / c.Fs
	ratio := gap / l.paceIdle.Seconds()
	for {
		old := l.paceRatio.Load()
		if ratio <= math.Float64frombits(old) {
			break
		}
		if l.paceRatio.CompareAndSwap(old, math.Float64bits(ratio)) {
			break
		}
	}
	if ratio >= 1 && l.paceWarned.CompareAndSwap(false, true) {
		l.logf("rxnet: stream %d/%d chunk span %.2fs >= idle timeout %v; paced sessions will be idle-evicted mid-stream (shrink the chunk size or raise the idle timeout)",
			c.NodeID, c.StreamID, gap, l.paceIdle)
	}
}

// ForceRedirect ends an in-flight stream on this engine: the consumer
// gets an End event (flush + release the decode session) and the
// stream's peer gets a NACK carrying the last consumed chunk Seq, so
// a router replays the remainder on the stream's new owner. It
// reports whether the stream was known. Used to evict the stragglers
// of a drain that must not wait for streams to finish naturally.
func (l *ChunkListener) ForceRedirect(session uint64) bool {
	l.mu.Lock()
	cur, ok := l.cursors[session]
	if !ok {
		l.mu.Unlock()
		return false
	}
	delete(l.cursors, session)
	l.refuse(session)
	l.mu.Unlock()
	l.emitEnd(session)
	if cur.src != nil {
		l.nacksSent.Add(1)
		nack := StreamNack{Session: session, LastSeq: cur.seq}
		if err := cur.src.writeFrame(FrameStreamNack, MarshalStreamNack(nack)); err != nil {
			l.logf("rxnet: redirect nack for session %d: %v", session, err)
		}
	}
	return true
}

// AckSession tells a session's peer that everything received so far
// has been consumed (decoded) through the stream's continuity cursor:
// the peer gets a StreamAck carrying the last consumed chunk Seq, so a
// cluster router can trim the stream's replay buffer — acked chunks
// never need replaying to a failover owner if this engine dies. It
// reports whether the stream was still known (a redirected or ended
// stream has no cursor left to ack). Peers that are not routers
// tolerate the frame: reliable nodes ignore unknown control frames and
// plain streaming nodes never read.
func (l *ChunkListener) AckSession(session uint64) bool {
	l.mu.Lock()
	cur, ok := l.cursors[session]
	var src *lconn
	var seq uint32
	if ok {
		src, seq = cur.src, cur.seq
	}
	l.mu.Unlock()
	if !ok || src == nil {
		return false
	}
	l.acksSent.Add(1)
	ack := StreamAck{Session: session, LastSeq: seq}
	if err := src.writeFrame(FrameStreamAck, MarshalStreamAck(ack)); err != nil {
		l.logf("rxnet: ack for session %d: %v", session, err)
		return false
	}
	return true
}

// refuse marks a session NACKed. Callers hold l.mu.
func (l *ChunkListener) refuse(session uint64) {
	if len(l.refused) >= maxStreamCursors {
		for k := range l.refused {
			delete(l.refused, k)
			break
		}
	}
	l.refused[session] = true
}

// emitEnd delivers a stream-End event to the consumer. End events are
// control plane: they are never dropped for queue pressure (losing
// one leaks a decode session), only when the listener is closing and
// the consumer stopped draining.
func (l *ChunkListener) emitEnd(session uint64) {
	ev := ChunkEvent{
		Session:  session,
		NodeID:   SessionNodeID(session),
		StreamID: SessionStreamID(session),
		End:      true,
	}
	select {
	case l.out <- ev:
	case <-l.closed:
		select {
		case l.out <- ev:
		default:
		}
	}
}

// ingestCounter returns the per-node ingest-bytes counter, creating
// its series on the node's first chunk.
func (l *ChunkListener) ingestCounter(node uint32) *telemetry.Counter {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.nodeTel[node]
	if !ok {
		c = l.reg.Counter(fmt.Sprintf(`pl_rxnet_ingest_bytes_total{node="%d"}`, node),
			"Sample-chunk frame bytes ingested per node.")
		l.nodeTel[node] = c
	}
	return c
}

// countFrameErr counts one malformed/unexpected frame.
func (l *ChunkListener) countFrameErr() {
	if l.frameErr != nil {
		l.frameErr.Inc()
	}
}

// Addr returns the bound listen address.
func (l *ChunkListener) Addr() string { return l.ln.Addr().String() }

// Chunks is the stream of sample deliveries. It is closed by Close
// after all connection handlers have exited.
func (l *ChunkListener) Chunks() <-chan ChunkEvent { return l.out }

// Hellos surfaces node registrations. The channel is buffered; when
// no one drains it, registrations are dropped rather than blocking
// sample delivery.
func (l *ChunkListener) Hellos() <-chan Hello { return l.hellos }

func (l *ChunkListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			l.logf("rxnet: chunk accept: %v", err)
			return
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

// admit applies cluster admission control and continuity checking to
// one chunk. accept=false means the chunk must be discarded: counted
// in RefusedChunks (nack=true additionally means this is the stream's
// first refusal and the peer must be sent a StreamNack), or in
// DuplicateChunks when dup=true — a retransmission the cursor already
// consumed (router failover replay), discarded without disturbing the
// decode session. reset has the cursor-table semantics shared with
// the aggregator's streaming path: a reconnect that resumes exactly
// where the old connection left off continues seamlessly, anything
// else flags a reset. replay marks an explicitly-retransmitted chunk
// (FrameSampleReplay): within the cursor it is always a duplicate —
// never a stream restart — while a live chunk is only treated as a
// duplicate when unambiguous (a live Seq=1/Start=0 could be a genuine
// restart and must reset instead).
func (l *ChunkListener) admit(c SampleChunk, src *lconn, replay bool) (accept, nack, reset, dup bool) {
	key := c.SessionKey()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.refused[key] {
		if l.draining {
			return false, false, false, false
		}
		// Not draining anymore: the ring moved the stream back here.
		// Accept it as a fresh stream (the redirect already released
		// any decode session).
		delete(l.refused, key)
	}
	cur, ok := l.cursors[key]
	if !ok {
		if l.draining {
			// New streams are refused while draining; in-flight ones
			// keep flowing so the drain stays lossless.
			l.refuse(key)
			return false, true, false, false
		}
		if len(l.cursors) >= maxStreamCursors {
			for k := range l.cursors {
				delete(l.cursors, k)
				break
			}
		}
		l.cursors[key] = &streamCursor{
			chunkCursor: chunkCursor{seq: c.Seq, next: c.Start + uint64(len(c.Samples))},
			src:         src,
		}
		return true, false, false, false
	}
	contiguous := c.Seq == cur.seq+1 && c.Start == cur.next
	if !contiguous {
		within := SeqLEq(c.Seq, cur.seq) && c.Start+uint64(len(c.Samples)) <= cur.next
		if within && (replay || (c.Seq != 1 && c.Start != 0)) {
			// Already consumed: keep the cursor where it is (the live
			// stream continues past it) but remember the connection —
			// after a failover the replaying conn IS the stream's new
			// source, and control frames must go there.
			cur.src = src
			return false, false, false, true
		}
	}
	cur.seq, cur.next = c.Seq, c.Start+uint64(len(c.Samples))
	cur.src = src
	return true, false, !contiguous, false
}

func (l *ChunkListener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	lc := &lconn{c: conn}
	l.mu.Lock()
	l.conns[lc] = struct{}{}
	draining := l.draining
	throttled := l.throttled
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.conns, lc)
		l.mu.Unlock()
	}()
	if draining {
		// A peer connecting to a draining engine (e.g. a router
		// redial) learns immediately.
		if err := lc.writeFrame(FrameDrain, MarshalDrain(Drain{Draining: true})); err != nil {
			return
		}
	}
	if throttled {
		// Likewise for a live backpressure signal.
		if err := lc.writeFrame(FrameThrottle, MarshalThrottle(Throttle{Paused: true})); err != nil {
			return
		}
	}
	var nodeID uint32
	// One frame buffer per connection: every frame body lands in it
	// (and is fully consumed before the next read), so the read loop
	// allocates nothing per frame.
	fr := newFrameReader(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := fr.next()
		if err != nil {
			select {
			case <-l.closed:
			default:
				l.logf("rxnet: chunk node %d read: %v", nodeID, err)
			}
			return
		}
		switch t {
		case FrameHello:
			h, err := UnmarshalHello(body)
			if err != nil {
				l.countFrameErr()
				l.logf("rxnet: bad hello: %v", err)
				return
			}
			nodeID = h.NodeID
			select {
			case l.hellos <- h:
			default:
			}
			l.logf("rxnet: chunk node %d (%s) at x=%.2f m joined", h.NodeID, h.Name, h.PosX)
		case FrameSampleChunk, FrameSampleReplay:
			// Decode straight into a pooled sample buffer: the wire →
			// buffer copy here is the only copy the chunk pays before
			// it reaches a session ring. The consumer releases the
			// buffer (ChunkEvent.Release) once the samples are fed.
			c, sb, err := unmarshalSampleChunkPooled(body)
			if err != nil {
				l.countFrameErr()
				l.logf("rxnet: bad sample chunk: %v", err)
				return
			}
			if l.reg != nil {
				l.ingestCounter(c.NodeID).Add(int64(len(body)))
			}
			l.received.Add(1)
			l.paceGuard(c)
			accept, nack, reset, dup := l.admit(c, lc, t == FrameSampleReplay)
			if reset {
				l.resets.Add(1)
			}
			if dup {
				sb.Release()
				l.duplicates.Add(1)
				continue
			}
			if !accept {
				sb.Release()
				l.refusedCnt.Add(1)
				if nack {
					l.nacksSent.Add(1)
					// LastSeq 0: nothing of the stream was consumed
					// here; the router replays it from the beginning.
					body := MarshalStreamNack(StreamNack{Session: c.SessionKey()})
					if err := lc.writeFrame(FrameStreamNack, body); err != nil {
						l.logf("rxnet: stream nack: %v", err)
						return
					}
				}
				continue
			}
			ev := ChunkEvent{
				Session:  c.SessionKey(),
				NodeID:   c.NodeID,
				StreamID: c.StreamID,
				Fs:       c.Fs,
				Samples:  c.Samples,
				Reset:    reset,
				Buf:      sb,
			}
			if l.dropOnFull {
				select {
				case l.out <- ev:
				case <-l.closed:
					l.dropped.Add(1)
					sb.Release()
					return
				default:
					l.dropped.Add(1)
					sb.Release()
				}
				continue
			}
			select {
			case l.out <- ev:
			case <-l.closed:
				// Closing mid-send: the consumer may still be draining
				// Chunks (Close only closes it after handlers exit), so
				// try once more without blocking rather than silently
				// abandoning the chunk in hand; count it dropped if the
				// queue is truly full.
				select {
				case l.out <- ev:
				default:
					l.dropped.Add(1)
					sb.Release()
				}
				return
			}
		case FrameStreamEnd:
			e, err := UnmarshalStreamEnd(body)
			if err != nil {
				l.countFrameErr()
				l.logf("rxnet: bad stream end: %v", err)
				return
			}
			l.endsRecv.Add(1)
			l.mu.Lock()
			delete(l.cursors, e.Session)
			delete(l.refused, e.Session)
			l.mu.Unlock()
			l.emitEnd(e.Session)
		case FrameDrainRequest:
			select {
			case l.drainReq <- struct{}{}:
			default:
			}
		default:
			l.countFrameErr()
			l.logf("rxnet: chunk listener got unexpected frame type %d", t)
			return
		}
	}
}

// Close stops the listener and all connection handlers, then closes
// the Chunks channel. Active connections are closed (a handler parked
// in a read would otherwise hold Close until its deadline), but each
// handler's in-hand chunk is still offered to the queue and counted
// if undeliverable, so delivered+dropped+refused always matches
// ReceivedChunks.
func (l *ChunkListener) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		err = l.ln.Close()
		l.mu.Lock()
		conns := make([]*lconn, 0, len(l.conns))
		for lc := range l.conns {
			conns = append(conns, lc)
		}
		l.mu.Unlock()
		for _, lc := range conns {
			lc.c.Close()
		}
		l.wg.Wait()
		close(l.out)
		close(l.hellos)
	})
	return err
}
