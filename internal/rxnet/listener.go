package rxnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ChunkEvent is one raw-sample delivery surfaced by a ChunkListener:
// the wire chunk resolved to an engine session key, with stream
// continuity already checked. It is the receiver-network flavor of a
// pipeline source chunk.
type ChunkEvent struct {
	// Session is the (node, stream) pair folded into one session key
	// (SampleChunk.SessionKey).
	Session uint64
	// NodeID and StreamID identify the sender.
	NodeID, StreamID uint32
	// Fs is the stream's sample rate (Hz).
	Fs float64
	// Samples are the chunk's RSS values.
	Samples []float64
	// Reset means the stream restarted or skipped (reconnect, gap):
	// the consumer must end any open decode session for Session before
	// feeding these samples, so epochs cannot splice together.
	Reset bool
}

// ChunkListener accepts receiver-node connections speaking the rxnet
// frame protocol and surfaces their raw SampleChunk frames as a
// channel of ChunkEvents — the transport half of the aggregator's
// streaming path, split out so a decode pipeline (not the aggregator)
// can own the DSP. Hello frames are surfaced on a side channel for
// node registration; Detection frames are rejected (nodes that decode
// locally should talk to an Aggregator instead).
type ChunkListener struct {
	ln     net.Listener
	out    chan ChunkEvent
	hellos chan Hello
	logf   func(format string, args ...any)

	mu      sync.Mutex
	cursors map[uint64]*chunkCursor

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// ListenChunks starts a chunk listener on addr ("host:port"; empty
// port picks an ephemeral one). logf receives diagnostics; nil
// silences them.
func ListenChunks(addr string, logf func(format string, args ...any)) (*ChunkListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	l := &ChunkListener{
		ln:      ln,
		out:     make(chan ChunkEvent, 64),
		hellos:  make(chan Hello, 64),
		logf:    logf,
		cursors: make(map[uint64]*chunkCursor),
		closed:  make(chan struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the bound listen address.
func (l *ChunkListener) Addr() string { return l.ln.Addr().String() }

// Chunks is the stream of sample deliveries. It is closed by Close
// after all connection handlers have exited.
func (l *ChunkListener) Chunks() <-chan ChunkEvent { return l.out }

// Hellos surfaces node registrations. The channel is buffered; when
// no one drains it, registrations are dropped rather than blocking
// sample delivery.
func (l *ChunkListener) Hellos() <-chan Hello { return l.hellos }

func (l *ChunkListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			l.logf("rxnet: chunk accept: %v", err)
			return
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

// advance checks chunk continuity against the shared cursor table
// (same semantics as the aggregator's streaming path: a reconnect that
// resumes exactly where the old connection left off continues
// seamlessly, anything else flags a reset).
func (l *ChunkListener) advance(c SampleChunk) (reset bool) {
	key := c.SessionKey()
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.cursors[key]
	if !ok {
		if len(l.cursors) >= maxStreamCursors {
			for k := range l.cursors {
				delete(l.cursors, k)
				break
			}
		}
		l.cursors[key] = &chunkCursor{seq: c.Seq, next: c.Start + uint64(len(c.Samples))}
		return false
	}
	contiguous := c.Seq == cur.seq+1 && c.Start == cur.next
	cur.seq, cur.next = c.Seq, c.Start+uint64(len(c.Samples))
	return !contiguous
}

func (l *ChunkListener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	var nodeID uint32
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-l.closed:
			default:
				l.logf("rxnet: chunk node %d read: %v", nodeID, err)
			}
			return
		}
		switch t {
		case FrameHello:
			h, err := UnmarshalHello(body)
			if err != nil {
				l.logf("rxnet: bad hello: %v", err)
				return
			}
			nodeID = h.NodeID
			select {
			case l.hellos <- h:
			default:
			}
			l.logf("rxnet: chunk node %d (%s) at x=%.2f m joined", h.NodeID, h.Name, h.PosX)
		case FrameSampleChunk:
			c, err := UnmarshalSampleChunk(body)
			if err != nil {
				l.logf("rxnet: bad sample chunk: %v", err)
				return
			}
			ev := ChunkEvent{
				Session:  c.SessionKey(),
				NodeID:   c.NodeID,
				StreamID: c.StreamID,
				Fs:       c.Fs,
				Samples:  c.Samples,
				Reset:    l.advance(c),
			}
			select {
			case l.out <- ev:
			case <-l.closed:
				return
			}
		default:
			l.logf("rxnet: chunk listener got unexpected frame type %d", t)
			return
		}
	}
}

// Close stops the listener and all connection handlers, then closes
// the Chunks channel.
func (l *ChunkListener) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		err = l.ln.Close()
		l.wg.Wait()
		close(l.out)
		close(l.hellos)
	})
	return err
}
