package rxnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/telemetry"
)

// ChunkEvent is one raw-sample delivery surfaced by a ChunkListener:
// the wire chunk resolved to an engine session key, with stream
// continuity already checked. It is the receiver-network flavor of a
// pipeline source chunk.
type ChunkEvent struct {
	// Session is the (node, stream) pair folded into one session key
	// (SampleChunk.SessionKey).
	Session uint64
	// NodeID and StreamID identify the sender.
	NodeID, StreamID uint32
	// Fs is the stream's sample rate (Hz).
	Fs float64
	// Samples are the chunk's RSS values.
	Samples []float64
	// Reset means the stream restarted or skipped (reconnect, gap):
	// the consumer must end any open decode session for Session before
	// feeding these samples, so epochs cannot splice together.
	Reset bool
}

// ChunkListener accepts receiver-node connections speaking the rxnet
// frame protocol and surfaces their raw SampleChunk frames as a
// channel of ChunkEvents — the transport half of the aggregator's
// streaming path, split out so a decode pipeline (not the aggregator)
// can own the DSP. Hello frames are surfaced on a side channel for
// node registration; Detection frames are rejected (nodes that decode
// locally should talk to an Aggregator instead).
type ChunkListener struct {
	ln         net.Listener
	out        chan ChunkEvent
	hellos     chan Hello
	logf       func(format string, args ...any)
	dropOnFull bool
	dropped    atomic.Int64

	mu       sync.Mutex
	cursors  map[uint64]*chunkCursor
	reg      *telemetry.Registry
	frameErr *telemetry.Counter
	nodeTel  map[uint32]*telemetry.Counter

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// ChunkListenerConfig tunes a ChunkListener beyond the address.
type ChunkListenerConfig struct {
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// QueueDepth bounds the Chunks channel (the ingest queue between
	// the network readers and the consumer). Zero selects 64.
	QueueDepth int
	// DropOnFull switches a full ingest queue from backpressure
	// (connection readers block, TCP flow control pushes back on the
	// nodes — the lossless default) to lossy ingest: the incoming
	// chunk is discarded and counted in DroppedChunks. Use it when a
	// stalled consumer must not stall the whole receiver network.
	DropOnFull bool
	// Metrics registers the listener's ingest series: per-node
	// pl_rxnet_ingest_bytes_total{node="N"}, pl_rxnet_frame_errors_total,
	// pl_rxnet_dropped_chunks_total and the pl_rxnet_queue_depth gauge.
	Metrics *telemetry.Registry
}

// ListenChunks starts a chunk listener on addr ("host:port"; empty
// port picks an ephemeral one) with default config. logf receives
// diagnostics; nil silences them.
func ListenChunks(addr string, logf func(format string, args ...any)) (*ChunkListener, error) {
	return ListenChunksConfig(addr, ChunkListenerConfig{Logf: logf})
}

// ListenChunksConfig starts a chunk listener with explicit queue and
// telemetry configuration.
func ListenChunksConfig(addr string, cfg ChunkListenerConfig) (*ChunkListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	l := &ChunkListener{
		ln:         ln,
		out:        make(chan ChunkEvent, depth),
		hellos:     make(chan Hello, 64),
		logf:       logf,
		dropOnFull: cfg.DropOnFull,
		cursors:    make(map[uint64]*chunkCursor),
		closed:     make(chan struct{}),
	}
	if cfg.Metrics != nil {
		l.reg = cfg.Metrics
		l.nodeTel = make(map[uint32]*telemetry.Counter)
		l.frameErr = l.reg.Counter("pl_rxnet_frame_errors_total",
			"Malformed or unexpected frames received from nodes.")
		l.reg.CounterFunc("pl_rxnet_dropped_chunks_total",
			"Sample chunks discarded because the ingest queue was full (DropOnFull).",
			l.dropped.Load)
		l.reg.GaugeFunc("pl_rxnet_queue_depth",
			"Chunk events waiting in the listener's ingest queue.",
			func() float64 { return float64(len(l.out)) })
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// DroppedChunks reports how many sample chunks a DropOnFull listener
// has discarded because the ingest queue was full.
func (l *ChunkListener) DroppedChunks() int64 { return l.dropped.Load() }

// ingestCounter returns the per-node ingest-bytes counter, creating
// its series on the node's first chunk.
func (l *ChunkListener) ingestCounter(node uint32) *telemetry.Counter {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.nodeTel[node]
	if !ok {
		c = l.reg.Counter(fmt.Sprintf(`pl_rxnet_ingest_bytes_total{node="%d"}`, node),
			"Sample-chunk frame bytes ingested per node.")
		l.nodeTel[node] = c
	}
	return c
}

// countFrameErr counts one malformed/unexpected frame.
func (l *ChunkListener) countFrameErr() {
	if l.frameErr != nil {
		l.frameErr.Inc()
	}
}

// Addr returns the bound listen address.
func (l *ChunkListener) Addr() string { return l.ln.Addr().String() }

// Chunks is the stream of sample deliveries. It is closed by Close
// after all connection handlers have exited.
func (l *ChunkListener) Chunks() <-chan ChunkEvent { return l.out }

// Hellos surfaces node registrations. The channel is buffered; when
// no one drains it, registrations are dropped rather than blocking
// sample delivery.
func (l *ChunkListener) Hellos() <-chan Hello { return l.hellos }

func (l *ChunkListener) acceptLoop() {
	defer l.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			l.logf("rxnet: chunk accept: %v", err)
			return
		}
		l.wg.Add(1)
		go l.serveConn(conn)
	}
}

// advance checks chunk continuity against the shared cursor table
// (same semantics as the aggregator's streaming path: a reconnect that
// resumes exactly where the old connection left off continues
// seamlessly, anything else flags a reset).
func (l *ChunkListener) advance(c SampleChunk) (reset bool) {
	key := c.SessionKey()
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.cursors[key]
	if !ok {
		if len(l.cursors) >= maxStreamCursors {
			for k := range l.cursors {
				delete(l.cursors, k)
				break
			}
		}
		l.cursors[key] = &chunkCursor{seq: c.Seq, next: c.Start + uint64(len(c.Samples))}
		return false
	}
	contiguous := c.Seq == cur.seq+1 && c.Start == cur.next
	cur.seq, cur.next = c.Seq, c.Start+uint64(len(c.Samples))
	return !contiguous
}

func (l *ChunkListener) serveConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	var nodeID uint32
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-l.closed:
			default:
				l.logf("rxnet: chunk node %d read: %v", nodeID, err)
			}
			return
		}
		switch t {
		case FrameHello:
			h, err := UnmarshalHello(body)
			if err != nil {
				l.countFrameErr()
				l.logf("rxnet: bad hello: %v", err)
				return
			}
			nodeID = h.NodeID
			select {
			case l.hellos <- h:
			default:
			}
			l.logf("rxnet: chunk node %d (%s) at x=%.2f m joined", h.NodeID, h.Name, h.PosX)
		case FrameSampleChunk:
			c, err := UnmarshalSampleChunk(body)
			if err != nil {
				l.countFrameErr()
				l.logf("rxnet: bad sample chunk: %v", err)
				return
			}
			if l.reg != nil {
				l.ingestCounter(c.NodeID).Add(int64(len(body)))
			}
			ev := ChunkEvent{
				Session:  c.SessionKey(),
				NodeID:   c.NodeID,
				StreamID: c.StreamID,
				Fs:       c.Fs,
				Samples:  c.Samples,
				Reset:    l.advance(c),
			}
			if l.dropOnFull {
				select {
				case l.out <- ev:
				case <-l.closed:
					return
				default:
					l.dropped.Add(1)
				}
				continue
			}
			select {
			case l.out <- ev:
			case <-l.closed:
				return
			}
		default:
			l.countFrameErr()
			l.logf("rxnet: chunk listener got unexpected frame type %d", t)
			return
		}
	}
}

// Close stops the listener and all connection handlers, then closes
// the Chunks channel.
func (l *ChunkListener) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.closed)
		err = l.ln.Close()
		l.wg.Wait()
		close(l.out)
		close(l.hellos)
	})
	return err
}
