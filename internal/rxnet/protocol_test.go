package rxnet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{1, 2, 3, 4}
	if err := WriteFrame(&buf, FrameDetection, body); err != nil {
		t.Fatal(err)
	}
	ft, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameDetection {
		t.Fatalf("frame type %d", ft)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body %v", got)
	}
}

func TestFrameErrors(t *testing.T) {
	// Bad magic.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0x00, 1, 1, 0, 0, 0, 0})); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	// Bad version.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{MagicByte, 99, 1, 0, 0, 0, 0})); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	// Oversized length prefix.
	big := []byte{MagicByte, Version, 1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(big)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized: %v", err)
	}
	// Truncated body.
	trunc := []byte{MagicByte, Version, 1, 0, 0, 0, 10, 1, 2}
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	// Oversized write rejected.
	if err := WriteFrame(&bytes.Buffer{}, FrameHello, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{NodeID: 42, PosX: -12.5, Height: 0.75, Name: "pole-42"}
	body, err := MarshalHello(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip %+v -> %+v", h, got)
	}
	// Name too long.
	long := Hello{Name: string(make([]byte, 65))}
	if _, err := MarshalHello(long); err == nil {
		t.Fatal("expected error for long name")
	}
	// Truncated body.
	if _, err := UnmarshalHello(body[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated hello: %v", err)
	}
}

func TestDetectionRoundTrip(t *testing.T) {
	d := Detection{
		NodeID:     7,
		Seq:        99,
		Time:       time.Unix(1720000000, 123456789),
		Bits:       []byte{1, 0, 0, 1},
		RSSPeak:    412.5,
		NoiseFloor: 6200,
		SymbolRate: 50.2,
	}
	body, err := MarshalDetection(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDetection(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeID != d.NodeID || got.Seq != d.Seq || !got.Time.Equal(d.Time) {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Bits, d.Bits) {
		t.Fatalf("bits %v", got.Bits)
	}
	if got.RSSPeak != d.RSSPeak || got.NoiseFloor != d.NoiseFloor || got.SymbolRate != d.SymbolRate {
		t.Fatalf("floats mismatch: %+v", got)
	}
}

func TestDetectionValidation(t *testing.T) {
	// Invalid bit values rejected on both paths.
	bad := Detection{Bits: []byte{0, 2}}
	if _, err := MarshalDetection(bad); err == nil {
		t.Fatal("bit value 2 should fail to marshal")
	}
	good := Detection{Bits: []byte{1}, Time: time.Now()}
	body, err := MarshalDetection(good)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-1] = 7 // corrupt the bit on the wire
	if _, err := UnmarshalDetection(body); err == nil {
		t.Fatal("corrupt bit should fail to unmarshal")
	}
	// Oversized payload rejected.
	huge := Detection{Bits: make([]byte, MaxBitsLen+1)}
	if _, err := MarshalDetection(huge); err == nil {
		t.Fatal("oversized bits should fail")
	}
	if _, err := UnmarshalDetection([]byte{1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated detection should fail")
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := Ack{NodeID: 3, Seq: 17}
	got, err := UnmarshalAck(MarshalAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("roundtrip %+v", got)
	}
	if _, err := UnmarshalAck([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated ack should fail")
	}
}

func TestTrackRoundTrip(t *testing.T) {
	tr := Track{
		ObjectBits:    []byte{1, 0, 1},
		FirstNode:     1,
		LastNode:      3,
		SpeedMS:       5.25,
		FirstSeen:     time.Unix(100, 0),
		LastSeen:      time.Unix(110, 0),
		Confirmations: 3,
	}
	body, err := MarshalTrack(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTrack(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.FirstNode != 1 || got.LastNode != 3 || got.SpeedMS != 5.25 || got.Confirmations != 3 {
		t.Fatalf("track %+v", got)
	}
	if !bytes.Equal(got.ObjectBits, tr.ObjectBits) {
		t.Fatalf("bits %v", got.ObjectBits)
	}
	if !got.FirstSeen.Equal(tr.FirstSeen) || !got.LastSeen.Equal(tr.LastSeen) {
		t.Fatalf("times %+v", got)
	}
	if _, err := UnmarshalTrack([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("truncated track should fail")
	}
}

func TestBitsString(t *testing.T) {
	if s := BitsString([]byte{1, 0, 0, 1}); s != "1001" {
		t.Fatalf("bits string %q", s)
	}
	if s := BitsString(nil); s != "" {
		t.Fatalf("empty bits string %q", s)
	}
}

func TestDetectionRoundTripProperty(t *testing.T) {
	f := func(node, seq uint32, rss, floor, rate float64, rawBits []byte) bool {
		if len(rawBits) > MaxBitsLen {
			rawBits = rawBits[:MaxBitsLen]
		}
		bits := make([]byte, len(rawBits))
		for i, b := range rawBits {
			bits[i] = b & 1
		}
		d := Detection{
			NodeID: node, Seq: seq,
			Time: time.Unix(0, int64(node)*1e9),
			Bits: bits, RSSPeak: rss, NoiseFloor: floor, SymbolRate: rate,
		}
		body, err := MarshalDetection(d)
		if err != nil {
			return false
		}
		got, err := UnmarshalDetection(body)
		if err != nil {
			return false
		}
		return got.NodeID == node && got.Seq == seq && bytes.Equal(got.Bits, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterFrameRoundTrips(t *testing.T) {
	e := StreamEnd{Session: 0x0000002A0000_0007}
	gotEnd, err := UnmarshalStreamEnd(MarshalStreamEnd(e))
	if err != nil || gotEnd != e {
		t.Fatalf("stream end round trip: %+v, %v", gotEnd, err)
	}
	if _, err := UnmarshalStreamEnd(nil); err == nil {
		t.Fatal("empty stream end accepted")
	}

	n := StreamNack{Session: 42<<32 | 7, LastSeq: 19}
	gotNack, err := UnmarshalStreamNack(MarshalStreamNack(n))
	if err != nil || gotNack != n {
		t.Fatalf("stream nack round trip: %+v, %v", gotNack, err)
	}
	if _, err := UnmarshalStreamNack(MarshalStreamEnd(e)); err == nil {
		t.Fatal("8-byte nack body accepted")
	}

	a := StreamAck{Session: 42<<32 | 7, LastSeq: 23}
	gotAck, err := UnmarshalStreamAck(MarshalStreamAck(a))
	if err != nil || gotAck != a {
		t.Fatalf("stream ack round trip: %+v, %v", gotAck, err)
	}
	if _, err := UnmarshalStreamAck(MarshalStreamEnd(e)); err == nil {
		t.Fatal("8-byte ack body accepted")
	}

	for _, draining := range []bool{true, false} {
		got, err := UnmarshalDrain(MarshalDrain(Drain{Draining: draining}))
		if err != nil || got.Draining != draining {
			t.Fatalf("drain round trip (%v): %+v, %v", draining, got, err)
		}
	}
	if _, err := UnmarshalDrain(nil); err == nil {
		t.Fatal("empty drain accepted")
	}
}

func TestMembershipFrameRoundTrips(t *testing.T) {
	eh := EngineHello{ID: "engine-a", Addr: "10.0.0.7:9200"}
	body, err := MarshalEngineHello(eh)
	if err != nil {
		t.Fatalf("marshal engine hello: %v", err)
	}
	got, err := UnmarshalEngineHello(body)
	if err != nil || got != eh {
		t.Fatalf("engine hello round trip: %+v, %v", got, err)
	}
	if _, err := MarshalEngineHello(EngineHello{ID: "", Addr: "x:1"}); err == nil {
		t.Fatal("empty engine ID accepted")
	}
	if _, err := MarshalEngineHello(EngineHello{ID: "a", Addr: ""}); err == nil {
		t.Fatal("empty engine addr accepted")
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := UnmarshalEngineHello(body[:cut]); err == nil {
			t.Fatalf("truncated engine hello (%d bytes) accepted", cut)
		}
	}

	ru := RingUpdate{Epoch: 9, Members: []RingMember{
		{ID: "engine-a", Addr: "10.0.0.7:9200"},
		{ID: "engine-b", Addr: "10.0.0.8:9200"},
	}}
	rb, err := MarshalRingUpdate(ru)
	if err != nil {
		t.Fatalf("marshal ring update: %v", err)
	}
	gotRu, err := UnmarshalRingUpdate(rb)
	if err != nil {
		t.Fatalf("unmarshal ring update: %v", err)
	}
	if gotRu.Epoch != ru.Epoch || len(gotRu.Members) != 2 ||
		gotRu.Members[0] != ru.Members[0] || gotRu.Members[1] != ru.Members[1] {
		t.Fatalf("ring update round trip: %+v", gotRu)
	}
	empty, err := MarshalRingUpdate(RingUpdate{Epoch: 1})
	if err != nil {
		t.Fatalf("marshal empty ring update: %v", err)
	}
	if got, err := UnmarshalRingUpdate(empty); err != nil || len(got.Members) != 0 {
		t.Fatalf("empty ring update round trip: %+v, %v", got, err)
	}
	for cut := 0; cut < len(rb); cut++ {
		if _, err := UnmarshalRingUpdate(rb[:cut]); err == nil {
			t.Fatalf("truncated ring update (%d bytes) accepted", cut)
		}
	}

	for _, paused := range []bool{true, false} {
		got, err := UnmarshalThrottle(MarshalThrottle(Throttle{Paused: paused}))
		if err != nil || got.Paused != paused {
			t.Fatalf("throttle round trip (%v): %+v, %v", paused, got, err)
		}
	}
	if _, err := UnmarshalThrottle(nil); err == nil {
		t.Fatal("empty throttle accepted")
	}
}
