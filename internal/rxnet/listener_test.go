package rxnet

import (
	"context"
	"net"
	"testing"
	"time"

	"passivelight/internal/telemetry"
)

// collectChunks drains n chunk events with a deadline.
func collectChunks(t *testing.T, l *ChunkListener, n int) []ChunkEvent {
	t.Helper()
	var out []ChunkEvent
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-l.Chunks():
			if !ok {
				t.Fatalf("chunk channel closed after %d of %d events", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d of %d events", len(out), n)
		}
	}
	return out
}

func TestChunkListenerDeliversAndResets(t *testing.T) {
	l, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hello := Hello{NodeID: 7, PosX: 12.5, Height: 0.75, Name: "pole-7"}
	node, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 2048)
	for i := range samples {
		samples[i] = float64(i % 100)
	}
	if err := node.StreamChunk(3, 2000, samples[:1024]); err != nil {
		t.Fatal(err)
	}
	if err := node.StreamChunk(3, 2000, samples[1024:]); err != nil {
		t.Fatal(err)
	}
	evs := collectChunks(t, l, 2)
	wantKey := uint64(7)<<32 | 3
	total := 0
	for i, ev := range evs {
		if ev.Session != wantKey || ev.NodeID != 7 || ev.StreamID != 3 {
			t.Fatalf("event %d keyed (%d, %d, %d), want session %d", i, ev.Session, ev.NodeID, ev.StreamID, wantKey)
		}
		if ev.Fs != 2000 {
			t.Fatalf("event %d fs %g", i, ev.Fs)
		}
		if ev.Reset {
			t.Fatalf("contiguous chunk %d flagged as reset", i)
		}
		total += len(ev.Samples)
	}
	if total != len(samples) {
		t.Fatalf("delivered %d samples, want %d", total, len(samples))
	}

	// Hello surfaced on the side channel.
	select {
	case h := <-l.Hellos():
		if h.NodeID != 7 || h.Name != "pole-7" {
			t.Fatalf("hello %+v", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hello surfaced")
	}
	node.Close()

	// A reconnecting node restarts its per-stream numbering: the
	// first chunk of the new connection must arrive flagged Reset so
	// the decode session cannot splice epochs.
	node2, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if err := node2.StreamChunk(3, 2000, samples[:512]); err != nil {
		t.Fatal(err)
	}
	evs = collectChunks(t, l, 1)
	if !evs[0].Reset {
		t.Fatal("restarted stream not flagged as reset")
	}
}

// TestChunkListenerDropOnFull locks in the bounded-ingest contract: a
// DropOnFull listener with a full queue discards chunks instead of
// blocking the connection reader, counts every discard, and records
// the ingest series in the attached registry.
func TestChunkListenerDropOnFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := ListenChunksConfig("127.0.0.1:0", ChunkListenerConfig{
		Logf:       t.Logf,
		QueueDepth: 1,
		DropOnFull: true,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 4, Name: "pole-4"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const sent = 16
	samples := make([]float64, 256)
	for i := 0; i < sent; i++ {
		if err := node.StreamChunk(1, 2000, samples); err != nil {
			t.Fatal(err)
		}
	}

	// Nobody consumes Chunks: the first chunk fills the depth-1 queue
	// and the listener must drop the remaining sent-1 as it reads them.
	deadline := time.Now().Add(5 * time.Second)
	for l.DroppedChunks() < sent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped %d chunks, want %d", l.DroppedChunks(), sent-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := l.DroppedChunks(); got != sent-1 {
		t.Fatalf("dropped %d chunks, want exactly %d", got, sent-1)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pl_rxnet_dropped_chunks_total"]; got != sent-1 {
		t.Fatalf("pl_rxnet_dropped_chunks_total = %d, want %d", got, sent-1)
	}
	if got := snap.Counters[`pl_rxnet_ingest_bytes_total{node="4"}`]; got <= 0 {
		t.Fatalf("pl_rxnet_ingest_bytes_total = %d, want > 0", got)
	}
	if got := snap.Gauges["pl_rxnet_queue_depth"]; got != 1 {
		t.Fatalf("pl_rxnet_queue_depth = %g, want 1 (queue full)", got)
	}

	// The queued chunk is still deliverable; the connection survived.
	evs := collectChunks(t, l, 1)
	if evs[0].NodeID != 4 || len(evs[0].Samples) != len(samples) {
		t.Fatalf("surviving chunk %+v", evs[0])
	}
}

// TestChunkListenerCloseDrainsQueued locks in the close accounting
// contract (delivered + dropped == received): closing the listener
// while chunks sit in the ingest queue must not strand them — the
// consumer can still drain the channel, and anything truly
// undeliverable is counted, never silently abandoned.
func TestChunkListenerCloseDrainsQueued(t *testing.T) {
	l, err := ListenChunksConfig("127.0.0.1:0", ChunkListenerConfig{
		Logf:       t.Logf,
		QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 9, Name: "pole-9"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const sent = 16
	samples := make([]float64, 128)
	for i := 0; i < sent; i++ {
		if err := node.StreamChunk(1, 2000, samples); err != nil {
			t.Fatal(err)
		}
	}

	// Nobody consumes: the reader fills the queue (4) and blocks with
	// one chunk in hand. Wait for ingestion to stall there.
	deadline := time.Now().Add(5 * time.Second)
	for l.ReceivedChunks() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("received %d chunks, want at least 5", l.ReceivedChunks())
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let ingestion settle

	closeDone := make(chan error, 1)
	go func() { closeDone <- l.Close() }()

	var delivered int64
	for range l.Chunks() {
		delivered++
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not finish")
	}

	received, dropped := l.ReceivedChunks(), l.DroppedChunks()
	if delivered+dropped != received {
		t.Fatalf("delivered %d + dropped %d != received %d: chunks abandoned on close",
			delivered, dropped, received)
	}
	if delivered < 4 {
		t.Fatalf("only %d of the 4 queued chunks survived close", delivered)
	}
}

// TestNodeResumeStreamReconnect proves the lossless reconnect path: a
// node that saves its stream state, redials, and resumes continues
// the same session with no Reset — no duplicate, no gap.
func TestNodeResumeStreamReconnect(t *testing.T) {
	l, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hello := Hello{NodeID: 3, Name: "pole-3"}
	node, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 300)
	if err := node.StreamChunk(5, 1000, samples[:200]); err != nil {
		t.Fatal(err)
	}
	first := collectChunks(t, l, 1) // cursor established before the reconnect
	seq, start := node.StreamState(5)
	if seq != 1 || start != 200 {
		t.Fatalf("stream state (%d, %d), want (1, 200)", seq, start)
	}
	node.Close()

	node2, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	node2.ResumeStream(5, seq, start)
	if err := node2.StreamChunk(5, 1000, samples[200:]); err != nil {
		t.Fatal(err)
	}

	evs := collectChunks(t, l, 1)
	if first[0].Reset || evs[0].Reset {
		t.Fatalf("resumed stream flagged reset: %v %v", first[0].Reset, evs[0].Reset)
	}
	if got := len(first[0].Samples) + len(evs[0].Samples); got != len(samples) {
		t.Fatalf("delivered %d samples across reconnect, want %d", got, len(samples))
	}
}

// readFrameWithin reads one frame off a raw connection with a deadline.
func readFrameWithin(t *testing.T, c net.Conn, d time.Duration) (FrameType, []byte) {
	t.Helper()
	if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
		t.Fatal(err)
	}
	ft, body, err := ReadFrame(c)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	return ft, body
}

// TestChunkListenerDrainRefusesNewStreams covers the drain admission
// contract: draining notifies peers, NACKs new streams (replay from
// the beginning), keeps in-flight streams flowing, and announces the
// drain to late-connecting peers.
func TestChunkListenerDrainRefusesNewStreams(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := ListenChunksConfig("127.0.0.1:0", ChunkListenerConfig{Logf: t.Logf, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 1, Name: "pole-1"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	samples := make([]float64, 64)
	if err := node.StreamChunk(1, 1000, samples); err != nil {
		t.Fatal(err)
	}
	collectChunks(t, l, 1) // stream (1,1) is now in flight

	l.Drain()
	l.Drain() // idempotent
	if !l.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	ft, body := readFrameWithin(t, node.conn, 5*time.Second)
	if ft != FrameDrain {
		t.Fatalf("peer got frame %d after Drain, want FrameDrain", ft)
	}
	if d, err := UnmarshalDrain(body); err != nil || !d.Draining {
		t.Fatalf("drain notice %+v, %v", d, err)
	}

	// A NEW stream is refused with a replay-from-start NACK...
	if err := node.StreamChunk(2, 1000, samples); err != nil {
		t.Fatal(err)
	}
	ft, body = readFrameWithin(t, node.conn, 5*time.Second)
	if ft != FrameStreamNack {
		t.Fatalf("new stream got frame %d while draining, want FrameStreamNack", ft)
	}
	nack, err := UnmarshalStreamNack(body)
	if err != nil {
		t.Fatal(err)
	}
	if nack.Session != uint64(1)<<32|2 || nack.LastSeq != 0 {
		t.Fatalf("nack %+v, want session (1,2) lastSeq 0", nack)
	}
	// ...and its follow-up chunks are discarded without a second NACK.
	if err := node.StreamChunk(2, 1000, samples); err != nil {
		t.Fatal(err)
	}

	// The in-flight stream keeps flowing.
	if err := node.StreamChunk(1, 1000, samples); err != nil {
		t.Fatal(err)
	}
	evs := collectChunks(t, l, 1)
	if evs[0].StreamID != 1 || evs[0].Reset {
		t.Fatalf("in-flight stream event %+v during drain", evs[0])
	}

	deadline := time.Now().Add(5 * time.Second)
	for l.RefusedChunks() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("refused %d chunks, want 2", l.RefusedChunks())
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pl_cluster_stream_nacks_sent_total"]; got != 1 {
		t.Fatalf("pl_cluster_stream_nacks_sent_total = %d, want 1", got)
	}
	if got := snap.Counters["pl_cluster_refused_chunks_total"]; got != 2 {
		t.Fatalf("pl_cluster_refused_chunks_total = %d, want 2", got)
	}

	// A peer connecting mid-drain is told immediately.
	late, err := Dial(ctx, l.Addr(), Hello{NodeID: 2, Name: "pole-2"})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if ft, _ := readFrameWithin(t, late.conn, 5*time.Second); ft != FrameDrain {
		t.Fatalf("late peer got frame %d, want FrameDrain", ft)
	}
}

// TestChunkListenerForceRedirectAndStreamEnd covers the two handoff
// primitives: ForceRedirect (engine evicts an in-flight stream — End
// event locally, NACK with the consumed Seq to the peer) and
// FrameStreamEnd (router orders a flush+release — End event locally).
func TestChunkListenerForceRedirectAndStreamEnd(t *testing.T) {
	l, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 8, Name: "pole-8"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	samples := make([]float64, 64)
	for i := 0; i < 3; i++ {
		if err := node.StreamChunk(1, 1000, samples); err != nil {
			t.Fatal(err)
		}
	}
	collectChunks(t, l, 3)

	session := uint64(8)<<32 | 1
	if !l.ForceRedirect(session) {
		t.Fatal("ForceRedirect did not know the in-flight stream")
	}
	if l.ForceRedirect(session) {
		t.Fatal("second ForceRedirect claims the stream is still here")
	}
	evs := collectChunks(t, l, 1)
	if !evs[0].End || evs[0].Session != session || len(evs[0].Samples) != 0 {
		t.Fatalf("redirect event %+v, want empty End for session %d", evs[0], session)
	}
	ft, body := readFrameWithin(t, node.conn, 5*time.Second)
	if ft != FrameStreamNack {
		t.Fatalf("redirect sent frame %d, want FrameStreamNack", ft)
	}
	nack, err := UnmarshalStreamNack(body)
	if err != nil {
		t.Fatal(err)
	}
	if nack.Session != session || nack.LastSeq != 3 {
		t.Fatalf("redirect nack %+v, want session %d lastSeq 3 (3 chunks consumed)", nack, session)
	}

	// A router-ordered StreamEnd also surfaces as an End event.
	endSession := uint64(8)<<32 | 9
	if err := WriteFrame(node.conn, FrameStreamEnd, MarshalStreamEnd(StreamEnd{Session: endSession})); err != nil {
		t.Fatal(err)
	}
	evs = collectChunks(t, l, 1)
	if !evs[0].End || evs[0].Session != endSession {
		t.Fatalf("stream-end event %+v, want End for session %d", evs[0], endSession)
	}

	// And a FrameDrainRequest surfaces on the DrainRequests channel.
	if err := WriteFrame(node.conn, FrameDrainRequest, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-l.DrainRequests():
	case <-time.After(5 * time.Second):
		t.Fatal("drain request not surfaced")
	}
}
