package rxnet

import (
	"context"
	"testing"
	"time"

	"passivelight/internal/telemetry"
)

// collectChunks drains n chunk events with a deadline.
func collectChunks(t *testing.T, l *ChunkListener, n int) []ChunkEvent {
	t.Helper()
	var out []ChunkEvent
	deadline := time.After(5 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-l.Chunks():
			if !ok {
				t.Fatalf("chunk channel closed after %d of %d events", len(out), n)
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out after %d of %d events", len(out), n)
		}
	}
	return out
}

func TestChunkListenerDeliversAndResets(t *testing.T) {
	l, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hello := Hello{NodeID: 7, PosX: 12.5, Height: 0.75, Name: "pole-7"}
	node, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]float64, 2048)
	for i := range samples {
		samples[i] = float64(i % 100)
	}
	if err := node.StreamChunk(3, 2000, samples[:1024]); err != nil {
		t.Fatal(err)
	}
	if err := node.StreamChunk(3, 2000, samples[1024:]); err != nil {
		t.Fatal(err)
	}
	evs := collectChunks(t, l, 2)
	wantKey := uint64(7)<<32 | 3
	total := 0
	for i, ev := range evs {
		if ev.Session != wantKey || ev.NodeID != 7 || ev.StreamID != 3 {
			t.Fatalf("event %d keyed (%d, %d, %d), want session %d", i, ev.Session, ev.NodeID, ev.StreamID, wantKey)
		}
		if ev.Fs != 2000 {
			t.Fatalf("event %d fs %g", i, ev.Fs)
		}
		if ev.Reset {
			t.Fatalf("contiguous chunk %d flagged as reset", i)
		}
		total += len(ev.Samples)
	}
	if total != len(samples) {
		t.Fatalf("delivered %d samples, want %d", total, len(samples))
	}

	// Hello surfaced on the side channel.
	select {
	case h := <-l.Hellos():
		if h.NodeID != 7 || h.Name != "pole-7" {
			t.Fatalf("hello %+v", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hello surfaced")
	}
	node.Close()

	// A reconnecting node restarts its per-stream numbering: the
	// first chunk of the new connection must arrive flagged Reset so
	// the decode session cannot splice epochs.
	node2, err := Dial(ctx, l.Addr(), hello)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	if err := node2.StreamChunk(3, 2000, samples[:512]); err != nil {
		t.Fatal(err)
	}
	evs = collectChunks(t, l, 1)
	if !evs[0].Reset {
		t.Fatal("restarted stream not flagged as reset")
	}
}

// TestChunkListenerDropOnFull locks in the bounded-ingest contract: a
// DropOnFull listener with a full queue discards chunks instead of
// blocking the connection reader, counts every discard, and records
// the ingest series in the attached registry.
func TestChunkListenerDropOnFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	l, err := ListenChunksConfig("127.0.0.1:0", ChunkListenerConfig{
		Logf:       t.Logf,
		QueueDepth: 1,
		DropOnFull: true,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 4, Name: "pole-4"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	const sent = 16
	samples := make([]float64, 256)
	for i := 0; i < sent; i++ {
		if err := node.StreamChunk(1, 2000, samples); err != nil {
			t.Fatal(err)
		}
	}

	// Nobody consumes Chunks: the first chunk fills the depth-1 queue
	// and the listener must drop the remaining sent-1 as it reads them.
	deadline := time.Now().Add(5 * time.Second)
	for l.DroppedChunks() < sent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("dropped %d chunks, want %d", l.DroppedChunks(), sent-1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := l.DroppedChunks(); got != sent-1 {
		t.Fatalf("dropped %d chunks, want exactly %d", got, sent-1)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pl_rxnet_dropped_chunks_total"]; got != sent-1 {
		t.Fatalf("pl_rxnet_dropped_chunks_total = %d, want %d", got, sent-1)
	}
	if got := snap.Counters[`pl_rxnet_ingest_bytes_total{node="4"}`]; got <= 0 {
		t.Fatalf("pl_rxnet_ingest_bytes_total = %d, want > 0", got)
	}
	if got := snap.Gauges["pl_rxnet_queue_depth"]; got != 1 {
		t.Fatalf("pl_rxnet_queue_depth = %g, want 1 (queue full)", got)
	}

	// The queued chunk is still deliverable; the connection survived.
	evs := collectChunks(t, l, 1)
	if evs[0].NodeID != 4 || len(evs[0].Samples) != len(samples) {
		t.Fatalf("surviving chunk %+v", evs[0])
	}
}
