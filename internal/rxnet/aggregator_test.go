package rxnet

import (
	"context"
	"testing"
	"time"
)

func startAggregator(t *testing.T, opt AggregatorOptions) (*Aggregator, string) {
	t.Helper()
	agg := NewAggregator(opt)
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { agg.Close() })
	return agg, addr
}

func dialNode(t *testing.T, addr string, hello Hello) *Node {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n, err := Dial(ctx, addr, hello)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestNodeRegistersAndPublishes(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{})
	node := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Height: 0.75, Name: "pole-1"})
	det := Detection{Time: time.Now(), Bits: []byte{1, 0}, RSSPeak: 100, NoiseFloor: 450, SymbolRate: 50}
	if err := node.Publish(det); err != nil {
		t.Fatal(err)
	}
	// Publish assigns sequence numbers.
	if err := node.Publish(det); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		nodes := agg.Nodes()
		if len(nodes) == 1 && nodes[0].Name == "pole-1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node not registered: %+v", nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTrackFusionAcrossNodes(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{TrackGap: time.Hour})
	base := time.Now()
	// Two poles 30 m apart; the object passes them 6 s apart -> 5 m/s.
	n1 := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Name: "p1"})
	if err := n1.Publish(Detection{Time: base, Bits: []byte{1, 1}}); err != nil {
		t.Fatal(err)
	}
	n2 := dialNode(t, addr, Hello{NodeID: 2, PosX: 30, Name: "p2"})
	if err := n2.Publish(Detection{Time: base.Add(6 * time.Second), Bits: []byte{1, 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var tracks []Track
	for {
		tracks = agg.Tracks()
		if len(tracks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no track fused")
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr := tracks[len(tracks)-1]
	if tr.SpeedMS < 4.9 || tr.SpeedMS > 5.1 {
		t.Fatalf("fused speed %v, want ~5", tr.SpeedMS)
	}
	if tr.FirstNode != 1 || tr.LastNode != 2 {
		t.Fatalf("node order %d -> %d", tr.FirstNode, tr.LastNode)
	}
	if tr.Confirmations != 2 {
		t.Fatalf("confirmations %d", tr.Confirmations)
	}
	if BitsString(tr.ObjectBits) != "11" {
		t.Fatalf("object bits %s", BitsString(tr.ObjectBits))
	}
}

func TestNoTrackFromSingleNode(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{})
	n := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Name: "p1"})
	for i := 0; i < 3; i++ {
		if err := n.Publish(Detection{Time: time.Now(), Bits: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if tracks := agg.Tracks(); len(tracks) != 0 {
		t.Fatalf("single receiver fused a track: %+v", tracks)
	}
}

func TestDifferentPayloadsDoNotFuse(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{TrackGap: time.Hour})
	base := time.Now()
	n1 := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Name: "p1"})
	if err := n1.Publish(Detection{Time: base, Bits: []byte{0}}); err != nil {
		t.Fatal(err)
	}
	n2 := dialNode(t, addr, Hello{NodeID: 2, PosX: 30, Name: "p2"})
	if err := n2.Publish(Detection{Time: base.Add(time.Second), Bits: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if tracks := agg.Tracks(); len(tracks) != 0 {
		t.Fatalf("different payloads fused: %+v", tracks)
	}
}

func TestSubscribeReceivesTracks(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{TrackGap: time.Hour})
	sub := agg.Subscribe()
	base := time.Now()
	n1 := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Name: "p1"})
	if err := n1.Publish(Detection{Time: base, Bits: []byte{1, 0}}); err != nil {
		t.Fatal(err)
	}
	n2 := dialNode(t, addr, Hello{NodeID: 2, PosX: 10, Name: "p2"})
	if err := n2.Publish(Detection{Time: base.Add(2 * time.Second), Bits: []byte{1, 0}}); err != nil {
		t.Fatal(err)
	}
	select {
	case tr := <-sub:
		if BitsString(tr.ObjectBits) != "10" {
			t.Fatalf("subscribed track bits %s", BitsString(tr.ObjectBits))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no track delivered to subscriber")
	}
}

func TestTrackGapDropsStaleDetections(t *testing.T) {
	agg, addr := startAggregator(t, AggregatorOptions{TrackGap: time.Second})
	base := time.Now()
	n1 := dialNode(t, addr, Hello{NodeID: 1, PosX: 0, Name: "p1"})
	if err := n1.Publish(Detection{Time: base.Add(-time.Hour), Bits: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	n2 := dialNode(t, addr, Hello{NodeID: 2, PosX: 10, Name: "p2"})
	if err := n2.Publish(Detection{Time: base, Bits: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if tracks := agg.Tracks(); len(tracks) != 0 {
		t.Fatalf("stale detection fused: %+v", tracks)
	}
}

func TestAggregatorCloseIdempotent(t *testing.T) {
	agg, _ := startAggregator(t, AggregatorOptions{})
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := agg.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
}

func TestDialFailsWithoutServer(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := Dial(ctx, "127.0.0.1:1", Hello{NodeID: 1}); err == nil {
		t.Fatal("expected connection failure")
	}
}
