package rxnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Discovery lets receiver nodes find the aggregator without
// configuration: the aggregator answers UDP probes with its TCP
// address. Low-end receivers broadcast a probe at boot and connect to
// whoever answers first.

// discoveryMagic opens every discovery datagram.
var discoveryMagic = [4]byte{'P', 'L', 'D', Version}

const (
	probeType  = 0x01
	answerType = 0x02
)

// Responder answers discovery probes on a UDP port.
type Responder struct {
	conn      *net.UDPConn
	tcpAddr   string
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// NewResponder starts answering probes on udpAddr (e.g. ":7411" or
// "127.0.0.1:0"), advertising tcpAddr as the aggregator endpoint. It
// returns the bound UDP address.
func NewResponder(udpAddr, tcpAddr string) (*Responder, string, error) {
	if tcpAddr == "" {
		return nil, "", errors.New("rxnet: empty TCP address to advertise")
	}
	addr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return nil, "", err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, "", err
	}
	r := &Responder{conn: conn, tcpAddr: tcpAddr, closed: make(chan struct{})}
	r.wg.Add(1)
	go r.serve()
	return r, conn.LocalAddr().String(), nil
}

func (r *Responder) serve() {
	defer r.wg.Done()
	buf := make([]byte, 512)
	for {
		n, peer, err := r.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-r.closed:
			default:
			}
			return
		}
		if n < 5 || !bytes.Equal(buf[:4], discoveryMagic[:]) || buf[4] != probeType {
			continue
		}
		answer := r.buildAnswer()
		// Best effort: a lost answer just means the node probes again.
		_, _ = r.conn.WriteToUDP(answer, peer)
	}
}

func (r *Responder) buildAnswer() []byte {
	var buf bytes.Buffer
	buf.Write(discoveryMagic[:])
	buf.WriteByte(answerType)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(r.tcpAddr)))
	buf.Write(l[:])
	buf.WriteString(r.tcpAddr)
	return buf.Bytes()
}

// Close stops the responder.
func (r *Responder) Close() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.closed)
		err = r.conn.Close()
		r.wg.Wait()
	})
	return err
}

// Discover probes the given UDP address (unicast or broadcast) and
// returns the advertised aggregator TCP address. It retries until the
// timeout elapses.
func Discover(udpAddr string, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	raddr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return "", err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	probe := append(append([]byte{}, discoveryMagic[:]...), probeType)
	buf := make([]byte, 512)
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		if _, err := conn.Write(probe); err != nil {
			return "", err
		}
		wait := 200 * time.Millisecond << uint(min(attempt, 3))
		if err := conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return "", err
		}
		n, err := conn.Read(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return "", err
		}
		addr, err := parseAnswer(buf[:n])
		if err != nil {
			continue // malformed datagram from something else
		}
		return addr, nil
	}
	return "", fmt.Errorf("rxnet: no aggregator answered on %s within %s", udpAddr, timeout)
}

func parseAnswer(b []byte) (string, error) {
	if len(b) < 7 || !bytes.Equal(b[:4], discoveryMagic[:]) || b[4] != answerType {
		return "", errors.New("rxnet: not a discovery answer")
	}
	n := int(binary.BigEndian.Uint16(b[5:7]))
	if len(b) < 7+n || n == 0 {
		return "", ErrTruncated
	}
	return string(b[7 : 7+n]), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
