package rxnet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"
)

// Aggregator is the fusion server: it accepts receiver-node
// connections, collects detections and maintains object tracks.
type Aggregator struct {
	mu        sync.Mutex
	nodes     map[uint32]Hello
	pending   map[string][]Detection // keyed by payload bits
	tracks    []Track
	subs      []chan Track
	ln        net.Listener
	wg        sync.WaitGroup
	logf      func(format string, args ...any)
	trackGap  time.Duration
	closeOnce sync.Once
	closed    chan struct{}
}

// AggregatorOptions configures the server.
type AggregatorOptions struct {
	// TrackGap is the maximum time between detections of the same
	// payload for them to fuse into one track. Zero selects 10 s.
	TrackGap time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// NewAggregator builds an idle aggregator.
func NewAggregator(opt AggregatorOptions) *Aggregator {
	gap := opt.TrackGap
	if gap == 0 {
		gap = 10 * time.Second
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Aggregator{
		nodes:    make(map[uint32]Hello),
		pending:  make(map[string][]Detection),
		logf:     logf,
		trackGap: gap,
		closed:   make(chan struct{}),
	}
}

// Listen starts accepting connections on addr ("host:port"; empty
// port picks an ephemeral one). It returns the bound address.
func (a *Aggregator) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (a *Aggregator) acceptLoop(ln net.Listener) {
	defer a.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			a.logf("rxnet: accept: %v", err)
			return
		}
		a.wg.Add(1)
		go a.serveConn(conn)
	}
}

func (a *Aggregator) serveConn(conn net.Conn) {
	defer a.wg.Done()
	defer conn.Close()
	var nodeID uint32
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := ReadFrame(conn)
		if err != nil {
			select {
			case <-a.closed:
			default:
				a.logf("rxnet: node %d read: %v", nodeID, err)
			}
			return
		}
		switch t {
		case FrameHello:
			h, err := UnmarshalHello(body)
			if err != nil {
				a.logf("rxnet: bad hello: %v", err)
				return
			}
			nodeID = h.NodeID
			a.mu.Lock()
			a.nodes[h.NodeID] = h
			a.mu.Unlock()
			a.logf("rxnet: node %d (%s) at x=%.2f m joined", h.NodeID, h.Name, h.PosX)
		case FrameDetection:
			d, err := UnmarshalDetection(body)
			if err != nil {
				a.logf("rxnet: bad detection: %v", err)
				return
			}
			a.ingest(d)
			if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
				return
			}
			if err := WriteFrame(conn, FrameAck, MarshalAck(Ack{NodeID: d.NodeID, Seq: d.Seq})); err != nil {
				a.logf("rxnet: ack to node %d: %v", d.NodeID, err)
				return
			}
		default:
			a.logf("rxnet: unexpected frame type %d from node", t)
			return
		}
	}
}

// ingest adds a detection and re-fuses the track for its payload.
func (a *Aggregator) ingest(d Detection) {
	key := BitsString(d.Bits)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pending[key] = append(a.pending[key], d)
	dets := a.pending[key]
	// Drop detections older than the track gap relative to the newest.
	newest := dets[len(dets)-1].Time
	kept := dets[:0]
	for _, det := range dets {
		if newest.Sub(det.Time) <= a.trackGap {
			kept = append(kept, det)
		}
	}
	a.pending[key] = kept
	track, ok := a.fuseLocked(kept)
	if !ok {
		return
	}
	a.tracks = append(a.tracks, track)
	for _, sub := range a.subs {
		select {
		case sub <- track:
		default: // slow subscriber: drop rather than block ingestion
		}
	}
}

// fuseLocked fuses the detection set for one payload into a track.
// Requires at least two receivers at distinct positions to estimate
// speed; single-receiver sightings are not yet tracks.
func (a *Aggregator) fuseLocked(dets []Detection) (Track, bool) {
	if len(dets) < 2 {
		return Track{}, false
	}
	sorted := append([]Detection(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	first, last := sorted[0], sorted[len(sorted)-1]
	nodeFirst, okF := a.nodes[first.NodeID]
	nodeLast, okL := a.nodes[last.NodeID]
	if !okF || !okL || first.NodeID == last.NodeID {
		return Track{}, false
	}
	dt := last.Time.Sub(first.Time).Seconds()
	if dt <= 0 {
		return Track{}, false
	}
	speed := (nodeLast.PosX - nodeFirst.PosX) / dt
	return Track{
		ObjectBits:    append([]byte(nil), first.Bits...),
		FirstNode:     first.NodeID,
		LastNode:      last.NodeID,
		SpeedMS:       speed,
		FirstSeen:     first.Time,
		LastSeen:      last.Time,
		Confirmations: len(sorted),
	}, true
}

// Subscribe returns a channel of fused tracks. The channel is closed
// when the aggregator shuts down.
func (a *Aggregator) Subscribe() <-chan Track {
	ch := make(chan Track, 16)
	a.mu.Lock()
	a.subs = append(a.subs, ch)
	a.mu.Unlock()
	return ch
}

// Tracks returns a snapshot of all fused tracks.
func (a *Aggregator) Tracks() []Track {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Track(nil), a.tracks...)
}

// Nodes returns a snapshot of registered nodes.
func (a *Aggregator) Nodes() []Hello {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Hello, 0, len(a.nodes))
	for _, h := range a.nodes {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// Close stops the listener and waits for connection handlers.
func (a *Aggregator) Close() error {
	var err error
	a.closeOnce.Do(func() {
		close(a.closed)
		a.mu.Lock()
		ln := a.ln
		subs := a.subs
		a.subs = nil
		a.mu.Unlock()
		if ln != nil {
			err = ln.Close()
		}
		a.wg.Wait()
		for _, sub := range subs {
			close(sub)
		}
	})
	return err
}

// Node is a receiver-side client publishing detections.
type Node struct {
	hello Hello
	conn  net.Conn
	mu    sync.Mutex
	seq   uint32
}

// Dial connects a node to the aggregator and sends its Hello.
func Dial(ctx context.Context, addr string, hello Hello) (*Node, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	body, err := MarshalHello(hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, body); err != nil {
		conn.Close()
		return nil, err
	}
	return &Node{hello: hello, conn: conn}, nil
}

// Publish sends a detection and waits for the ack.
func (n *Node) Publish(d Detection) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	d.NodeID = n.hello.NodeID
	d.Seq = n.seq
	body, err := MarshalDetection(d)
	if err != nil {
		return err
	}
	if err := n.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if err := WriteFrame(n.conn, FrameDetection, body); err != nil {
		return err
	}
	if err := n.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	t, ackBody, err := ReadFrame(n.conn)
	if err != nil {
		return err
	}
	if t != FrameAck {
		return fmt.Errorf("rxnet: expected ack, got frame type %d", t)
	}
	ack, err := UnmarshalAck(ackBody)
	if err != nil {
		return err
	}
	if ack.NodeID != d.NodeID || ack.Seq != d.Seq {
		return fmt.Errorf("rxnet: ack mismatch: got node=%d seq=%d want node=%d seq=%d",
			ack.NodeID, ack.Seq, d.NodeID, d.Seq)
	}
	return nil
}

// Close closes the node connection.
func (n *Node) Close() error { return n.conn.Close() }

// StdLogf adapts the standard logger for AggregatorOptions.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
