package rxnet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"passivelight/internal/stream"
)

// Aggregator is the fusion server: it accepts receiver-node
// connections, collects detections and maintains object tracks.
// With streaming enabled it also accepts raw SampleChunk frames and
// decodes them server-side through a stream.Engine before fusion.
type Aggregator struct {
	mu        sync.Mutex
	nodes     map[uint32]Hello
	pending   map[string][]Detection // keyed by payload bits
	tracks    []Track
	subs      []chan Track
	ln        net.Listener
	wg        sync.WaitGroup
	logf      func(format string, args ...any)
	trackGap  time.Duration
	closeOnce sync.Once
	closed    chan struct{}

	engine   *stream.Engine
	engineWG sync.WaitGroup
	// cursors tracks each stream's expected chunk continuation
	// across connections, keyed by SessionKey, so reconnects and
	// gaps are detected rather than spliced into the decode.
	cursors map[uint64]*chunkCursor
}

// AggregatorOptions configures the server.
type AggregatorOptions struct {
	// TrackGap is the maximum time between detections of the same
	// payload for them to fuse into one track. Zero selects 10 s.
	TrackGap time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
	// Streaming, when non-nil, enables server-side decoding of
	// SampleChunk frames through a stream.Engine with this
	// configuration. Session.Fs may be zero — each stream's chunks
	// carry their own sample rate.
	Streaming *stream.EngineConfig
}

// NewAggregator builds an idle aggregator.
func NewAggregator(opt AggregatorOptions) *Aggregator {
	gap := opt.TrackGap
	if gap == 0 {
		gap = 10 * time.Second
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	a := &Aggregator{
		nodes:    make(map[uint32]Hello),
		pending:  make(map[string][]Detection),
		logf:     logf,
		trackGap: gap,
		closed:   make(chan struct{}),
		cursors:  make(map[uint64]*chunkCursor),
	}
	if opt.Streaming != nil {
		cfg := *opt.Streaming
		if cfg.Session.Fs == 0 {
			// Placeholder default; every session adopts the rate its
			// chunks declare.
			cfg.Session.Fs = 1000
		}
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			// Config errors are programming mistakes; surface loudly
			// but keep the detection-only aggregator usable.
			a.logf("rxnet: streaming disabled: %v", err)
		} else {
			a.engine = eng
			a.engineWG.Add(1)
			go a.consumeEngine()
		}
	}
	return a
}

// consumeEngine turns server-side stream decodes into detections and
// feeds them to track fusion. It consumes the engine's batched output
// (one channel receive per decode step) rather than the flattened
// per-detection view.
func (a *Aggregator) consumeEngine() {
	defer a.engineWG.Done()
	seqs := make(map[uint64]uint32)
	for batch := range a.engine.Batches() {
		for _, det := range batch {
			if det.Err != nil {
				a.logf("rxnet: stream session %d segment [%d,%d): %v", det.Session, det.Start, det.End, det.Err)
				continue
			}
			if len(seqs) >= maxStreamCursors {
				// Same bound as the cursor table; restarting the
				// per-node detection numbering is harmless (fusion
				// keys on bits and time, not Seq).
				seqs = make(map[uint64]uint32)
			}
			seqs[det.Session]++
			// Use the stream-anchored wall time, not consumption
			// time: segments of different sessions flushed in one
			// batch must keep the spacing of the actual passes, or
			// track fusion computes speeds from microsecond dt.
			when := det.Wall
			if when.IsZero() {
				when = time.Now()
			}
			a.ingest(Detection{
				NodeID:     SessionNodeID(det.Session),
				Seq:        seqs[det.Session],
				Time:       when,
				Bits:       det.Bits,
				RSSPeak:    det.RSSPeak,
				NoiseFloor: det.NoiseFloor,
				SymbolRate: det.SymbolRate,
			})
		}
	}
}

// StreamStats reports the streaming engine's Stats. It returns false
// when streaming is disabled.
func (a *Aggregator) StreamStats() (stream.Stats, bool) {
	if a.engine == nil {
		return stream.Stats{}, false
	}
	return a.engine.Stats(), true
}

// FlushStreams forces end-of-stream on all streaming sessions, so
// segments still waiting for their quiet hold decode now. No-op when
// streaming is disabled.
func (a *Aggregator) FlushStreams() {
	if a.engine != nil {
		a.engine.FlushAll()
	}
}

// Listen starts accepting connections on addr ("host:port"; empty
// port picks an ephemeral one). It returns the bound address.
func (a *Aggregator) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (a *Aggregator) acceptLoop(ln net.Listener) {
	defer a.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-a.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			a.logf("rxnet: accept: %v", err)
			return
		}
		a.wg.Add(1)
		go a.serveConn(conn)
	}
}

// maxStreamCursors bounds the per-stream bookkeeping tables on the
// long-running aggregator.
const maxStreamCursors = 1 << 16

// chunkCursor is one stream's expected chunk continuation.
type chunkCursor struct {
	seq  uint32
	next uint64
}

// advanceCursor checks a chunk against the stream's cursor (shared
// across connections, so a reconnect that resumes exactly where the
// old connection left off continues seamlessly) and reports whether
// the server-side decode session must be reset first, or whether the
// chunk is a duplicate of something already consumed (a replayed
// retransmission to discard, not a restart). shedKey, when non-zero-ok,
// is a stream whose cursor was evicted to bound the table — the
// caller must end its engine session too, since without a cursor its
// continuity can no longer be checked.
func (a *Aggregator) advanceCursor(c SampleChunk, replay bool) (reset bool, reason string, dup bool, shedKey uint64, shed bool) {
	key := c.SessionKey()
	a.mu.Lock()
	defer a.mu.Unlock()
	cur, ok := a.cursors[key]
	if !ok {
		// Bound the table: the aggregator runs indefinitely, so churn
		// of (node, stream) pairs must not grow it forever.
		if len(a.cursors) >= maxStreamCursors {
			for k := range a.cursors {
				delete(a.cursors, k)
				shedKey, shed = k, true
				break
			}
		}
		a.cursors[key] = &chunkCursor{seq: c.Seq, next: c.Start + uint64(len(c.Samples))}
		return false, "", false, shedKey, shed
	}
	contiguous := c.Seq == cur.seq+1 && c.Start == cur.next
	if !contiguous {
		// A chunk wholly within the cursor is a duplicate when it is
		// provably a retransmission: either explicitly marked (replay),
		// or mid-stream (a live Seq=1/Start=0 could be a genuine
		// restart, which must reset — never silently discard).
		within := SeqLEq(c.Seq, cur.seq) && c.Start+uint64(len(c.Samples)) <= cur.next
		if within && (replay || (c.Seq != 1 && c.Start != 0)) {
			return false, "", true, 0, false
		}
	}
	cur.seq, cur.next = c.Seq, c.Start+uint64(len(c.Samples))
	switch {
	case contiguous:
		return false, "", false, 0, false
	case c.Seq == 1 || c.Start == 0:
		return true, "stream restarted", false, 0, false
	default:
		return true, "discontinuity", false, 0, false
	}
}

func (a *Aggregator) serveConn(conn net.Conn) {
	defer a.wg.Done()
	defer conn.Close()
	var nodeID uint32
	fr := newFrameReader(conn)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(2 * time.Minute)); err != nil {
			return
		}
		t, body, err := fr.next()
		if err != nil {
			select {
			case <-a.closed:
			default:
				a.logf("rxnet: node %d read: %v", nodeID, err)
			}
			return
		}
		switch t {
		case FrameHello:
			h, err := UnmarshalHello(body)
			if err != nil {
				a.logf("rxnet: bad hello: %v", err)
				return
			}
			nodeID = h.NodeID
			a.mu.Lock()
			a.nodes[h.NodeID] = h
			a.mu.Unlock()
			a.logf("rxnet: node %d (%s) at x=%.2f m joined", h.NodeID, h.Name, h.PosX)
		case FrameDetection:
			d, err := UnmarshalDetection(body)
			if err != nil {
				a.logf("rxnet: bad detection: %v", err)
				return
			}
			a.ingest(d)
			if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
				return
			}
			if err := WriteFrame(conn, FrameAck, MarshalAck(Ack{NodeID: d.NodeID, Seq: d.Seq})); err != nil {
				a.logf("rxnet: ack to node %d: %v", d.NodeID, err)
				return
			}
		case FrameSampleChunk, FrameSampleReplay:
			if a.engine == nil {
				a.logf("rxnet: node %d streamed samples but streaming is disabled", nodeID)
				return
			}
			// Pooled decode: Feed copies the samples into the session
			// ring before returning, so the buffer can be released
			// right after.
			c, sb, err := unmarshalSampleChunkPooled(body)
			if err != nil {
				a.logf("rxnet: bad sample chunk: %v", err)
				return
			}
			reset, reason, dup, shedKey, shed := a.advanceCursor(c, t == FrameSampleReplay)
			if dup {
				sb.Release()
				continue
			}
			if shed {
				// The shed stream's engine session must not outlive
				// its cursor, or its next chunk would splice in with
				// continuity unchecked.
				a.engine.EndSession(shedKey)
			}
			if reset {
				a.logf("rxnet: node %d stream %d %s at seq %d start %d; previous session flushed",
					c.NodeID, c.StreamID, reason, c.Seq, c.Start)
				a.engine.EndSession(c.SessionKey())
			}
			if err := a.engine.Feed(c.SessionKey(), c.Fs, c.Samples); err != nil {
				a.logf("rxnet: stream feed node %d stream %d: %v", c.NodeID, c.StreamID, err)
			}
			sb.Release()
		default:
			a.logf("rxnet: unexpected frame type %d from node", t)
			return
		}
	}
}

// RegisterNode records a node's position/identity for track fusion
// without a network connection — for deployments where registration
// arrives out of band (e.g. a ChunkListener's Hello channel feeding a
// decode pipeline while this aggregator only fuses).
func (a *Aggregator) RegisterNode(h Hello) {
	a.mu.Lock()
	a.nodes[h.NodeID] = h
	a.mu.Unlock()
}

// Ingest feeds one detection straight into track fusion, bypassing
// the network path. A zero Time is stamped with the current time.
// Use together with RegisterNode when decoding happens outside the
// aggregator (e.g. in a Pipeline over a ChunkListener source).
func (a *Aggregator) Ingest(d Detection) {
	if d.Time.IsZero() {
		d.Time = time.Now()
	}
	a.ingest(d)
}

// ingest adds a detection and re-fuses the track for its payload.
func (a *Aggregator) ingest(d Detection) {
	key := BitsString(d.Bits)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pending[key] = append(a.pending[key], d)
	dets := a.pending[key]
	// Drop detections older than the track gap relative to the newest.
	newest := dets[len(dets)-1].Time
	kept := dets[:0]
	for _, det := range dets {
		if newest.Sub(det.Time) <= a.trackGap {
			kept = append(kept, det)
		}
	}
	a.pending[key] = kept
	track, ok := a.fuseLocked(kept)
	if !ok {
		return
	}
	a.tracks = append(a.tracks, track)
	for _, sub := range a.subs {
		select {
		case sub <- track:
		default: // slow subscriber: drop rather than block ingestion
		}
	}
}

// fuseLocked fuses the detection set for one payload into a track.
// Requires at least two receivers at distinct positions to estimate
// speed; single-receiver sightings are not yet tracks.
func (a *Aggregator) fuseLocked(dets []Detection) (Track, bool) {
	if len(dets) < 2 {
		return Track{}, false
	}
	sorted := append([]Detection(nil), dets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	first, last := sorted[0], sorted[len(sorted)-1]
	nodeFirst, okF := a.nodes[first.NodeID]
	nodeLast, okL := a.nodes[last.NodeID]
	if !okF || !okL || first.NodeID == last.NodeID {
		return Track{}, false
	}
	dt := last.Time.Sub(first.Time).Seconds()
	if dt <= 0 {
		return Track{}, false
	}
	speed := (nodeLast.PosX - nodeFirst.PosX) / dt
	return Track{
		ObjectBits:    append([]byte(nil), first.Bits...),
		FirstNode:     first.NodeID,
		LastNode:      last.NodeID,
		SpeedMS:       speed,
		FirstSeen:     first.Time,
		LastSeen:      last.Time,
		Confirmations: len(sorted),
	}, true
}

// Subscribe returns a channel of fused tracks. The channel is closed
// when the aggregator shuts down.
func (a *Aggregator) Subscribe() <-chan Track {
	ch := make(chan Track, 16)
	a.mu.Lock()
	a.subs = append(a.subs, ch)
	a.mu.Unlock()
	return ch
}

// Tracks returns a snapshot of all fused tracks.
func (a *Aggregator) Tracks() []Track {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Track(nil), a.tracks...)
}

// Nodes returns a snapshot of registered nodes.
func (a *Aggregator) Nodes() []Hello {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Hello, 0, len(a.nodes))
	for _, h := range a.nodes {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// Close stops the listener, flushes the streaming engine (its last
// detections still fuse into tracks) and waits for all handlers.
func (a *Aggregator) Close() error {
	var err error
	a.closeOnce.Do(func() {
		close(a.closed)
		a.mu.Lock()
		ln := a.ln
		a.mu.Unlock()
		if ln != nil {
			err = ln.Close()
		}
		a.wg.Wait()
		if a.engine != nil {
			a.engine.Close()
			a.engineWG.Wait()
		}
		a.mu.Lock()
		subs := a.subs
		a.subs = nil
		a.mu.Unlock()
		for _, sub := range subs {
			close(sub)
		}
	})
	return err
}

// Node is a receiver-side client publishing detections or streaming
// raw samples. Dial builds a plain node whose writes fail when the
// connection dies; DialReliable builds one that redials with backoff
// and honors server backpressure.
type Node struct {
	hello   Hello
	conn    net.Conn
	mu      sync.Mutex
	seq     uint32
	streams map[uint32]*streamState

	// Reliable-mode state (see redial.go); nil rcfg on a plain node.
	addr      string
	addrs     []string // failover rotation; addrs[0] == addr
	addrIdx   int      // current rotation position, under mu
	rcfg      *RedialConfig
	helloBody []byte
	rctx      context.Context
	gen       int // connection generation, under mu
	redials   atomic.Int64
	shedCnt   atomic.Int64
	resent    atomic.Int64
	readerWG  sync.WaitGroup
	closedCh  chan struct{}
	closeOnce sync.Once

	pmu      sync.Mutex
	paused   bool
	resumeCh chan struct{}
}

// streamState tracks per-stream chunk accounting on the node side.
type streamState struct {
	seq   uint32
	start uint64
	// saved is the stream's bounded resend buffer (multi-address
	// reliable nodes only): the marshaled bodies of the most recently
	// sent chunks, replayed on reconnect or on a server StreamNack so
	// a failover router that never saw the stream can rebuild it.
	saved      []savedBody
	savedBytes int
}

// savedBody is one buffered chunk body awaiting possible replay.
type savedBody struct {
	seq  uint32
	body []byte
}

// Dial connects a node to the aggregator and sends its Hello.
func Dial(ctx context.Context, addr string, hello Hello) (*Node, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	body, err := MarshalHello(hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := WriteFrame(conn, FrameHello, body); err != nil {
		conn.Close()
		return nil, err
	}
	return &Node{hello: hello, conn: conn}, nil
}

// Publish sends a detection and waits for the ack.
func (n *Node) Publish(d Detection) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	d.NodeID = n.hello.NodeID
	d.Seq = n.seq
	body, err := MarshalDetection(d)
	if err != nil {
		return err
	}
	if err := n.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if err := WriteFrame(n.conn, FrameDetection, body); err != nil {
		return err
	}
	if err := n.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	t, ackBody, err := ReadFrame(n.conn)
	if err != nil {
		return err
	}
	if t != FrameAck {
		return fmt.Errorf("rxnet: expected ack, got frame type %d", t)
	}
	ack, err := UnmarshalAck(ackBody)
	if err != nil {
		return err
	}
	if ack.NodeID != d.NodeID || ack.Seq != d.Seq {
		return fmt.Errorf("rxnet: ack mismatch: got node=%d seq=%d want node=%d seq=%d",
			ack.NodeID, ack.Seq, d.NodeID, d.Seq)
	}
	return nil
}

// StreamChunk ships raw RSS samples for server-side decoding. Unlike
// Publish it does not wait for an acknowledgement: chunk streams are
// high-rate, TCP orders them, and the aggregator's engine absorbs
// bursts in per-session ring buffers. The node's ID is stamped on the
// chunk; Seq and Start are maintained per stream automatically.
func (n *Node) StreamChunk(streamID uint32, fs float64, samples []float64) error {
	if err := n.pauseGate(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.streams == nil {
		n.streams = make(map[uint32]*streamState)
	}
	st := n.streams[streamID]
	if st == nil {
		st = &streamState{}
		n.streams[streamID] = st
	}
	// Oversized slices are split transparently into wire-sized chunks.
	for len(samples) > 0 {
		part := samples
		if len(part) > MaxChunkSamples {
			part = part[:MaxChunkSamples]
		}
		if n.shedGateLocked() {
			// Paused and shedding: drop the chunk but advance the
			// counters, so the server's continuity cursor sees the gap
			// as a counted reset rather than a silent splice.
			st.seq++
			st.start += uint64(len(part))
			samples = samples[len(part):]
			continue
		}
		c := SampleChunk{
			NodeID:   n.hello.NodeID,
			StreamID: streamID,
			Seq:      st.seq + 1,
			Fs:       fs,
			Start:    st.start,
			Samples:  part,
		}
		body, err := MarshalSampleChunk(c)
		if err != nil {
			return err
		}
		if err := n.writeChunkLocked(body); err != nil {
			return err
		}
		if n.rcfg != nil && n.rcfg.ResendBytes > 0 {
			n.saveChunkLocked(st, c.Seq, body)
		}
		st.seq++
		st.start += uint64(len(part))
		samples = samples[len(part):]
	}
	return nil
}

// StreamState reports a stream's chunk accounting: the Seq of the
// last chunk sent and the Start index the next chunk will carry.
// Saved before a connection loss and restored with ResumeStream, it
// lets a redialed node continue the stream seamlessly.
func (n *Node) StreamState(streamID uint32) (seq uint32, start uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st := n.streams[streamID]; st != nil {
		return st.seq, st.start
	}
	return 0, 0
}

// ResumeStream primes a stream's chunk counters on a fresh Node so
// its numbering continues exactly where a previous connection
// stopped. The server-side continuity cursor then splices the
// reconnected stream into the same decode session with no reset —
// no duplicate and no gap.
func (n *Node) ResumeStream(streamID uint32, seq uint32, start uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.streams == nil {
		n.streams = make(map[uint32]*streamState)
	}
	n.streams[streamID] = &streamState{seq: seq, start: start}
}

// Close closes the node connection (and stops a reliable node's
// redial/control machinery).
func (n *Node) Close() error {
	if n.rcfg == nil {
		return n.conn.Close()
	}
	var err error
	n.closeOnce.Do(func() {
		close(n.closedCh)
		n.mu.Lock()
		if n.conn != nil {
			err = n.conn.Close()
		}
		n.mu.Unlock()
		n.readerWG.Wait()
	})
	return err
}

// StdLogf adapts the standard logger for AggregatorOptions.Logf.
func StdLogf(format string, args ...any) { log.Printf(format, args...) }
