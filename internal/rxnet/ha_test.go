package rxnet

import (
	"context"
	"math"
	"testing"
	"time"
)

// Regression for the Backoff.Delay jitter panic: rand.Int63n panics
// on a non-positive argument, so a degenerate config (sub-millisecond
// Base, a doubling that overflows int64, an absurd Max whose jitter
// sum overflows) must clamp rather than crash the redial loop.
func TestBackoffDelayDegenerate(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
	}{
		{"zero value", Backoff{}},
		{"nanosecond base", Backoff{Base: 1}},
		{"negative base", Backoff{Base: -time.Second}},
		{"base above max", Backoff{Base: time.Second, Max: time.Millisecond}},
		{"nanosecond base and max", Backoff{Base: 1, Max: 1}},
		{"max int64 max", Backoff{Base: time.Second, Max: math.MaxInt64}},
	}
	attempts := []int{0, 1, 2, 63, 64, 100}
	for _, tc := range cases {
		for _, attempt := range attempts {
			d := tc.b.Delay(attempt)
			if d <= 0 {
				t.Errorf("%s: Delay(%d) = %v, want > 0", tc.name, attempt, d)
			}
		}
	}
}

// chunkAt builds a marshaled chunk body for the dedup tests: node 9,
// stream 2, 50 samples per chunk, Start following seq.
func chunkAt(t *testing.T, seq uint32, start uint64) []byte {
	t.Helper()
	body, err := MarshalSampleChunk(SampleChunk{
		NodeID: 9, StreamID: 2, Seq: seq,
		Fs: 1000, Start: start, Samples: make([]float64, 50),
	})
	if err != nil {
		t.Fatalf("marshal chunk: %v", err)
	}
	return body
}

// The listener discards chunks its continuity cursor already covers —
// marked replays unconditionally, live retransmissions unless they
// are a genuine stream restart (Seq 1, Start 0) — without resetting
// the cursor, and counts every discard.
func TestChunkListenerDedupsReplayedChunks(t *testing.T) {
	l, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node, err := Dial(ctx, l.Addr(), Hello{NodeID: 9, Name: "pole-9"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	samples := make([]float64, 50)
	for i := 0; i < 3; i++ {
		if err := node.StreamChunk(2, 1000, samples); err != nil {
			t.Fatal(err)
		}
	}
	collectChunks(t, l, 3) // cursor now at seq 3, next 150

	waitDup := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for l.DuplicateChunks() < want {
			if time.Now().After(deadline) {
				t.Fatalf("duplicates = %d, want %d", l.DuplicateChunks(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// A marked replay of an already-consumed chunk is discarded.
	if err := WriteFrame(node.conn, FrameSampleReplay, chunkAt(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	waitDup(1)

	// A LIVE retransmission within the cursor (a router resent a chunk
	// it could not prove delivered) is discarded too.
	if err := WriteFrame(node.conn, FrameSampleChunk, chunkAt(t, 2, 50)); err != nil {
		t.Fatal(err)
	}
	waitDup(2)

	// The live stream continues past the duplicates with no reset: the
	// cursor must not have moved.
	if err := node.StreamChunk(2, 1000, samples); err != nil {
		t.Fatal(err)
	}
	evs := collectChunks(t, l, 1)
	if evs[0].Reset {
		t.Fatal("live chunk after discarded duplicates flagged reset")
	}

	// A live Seq=1/Start=0 inside the cursor window is NOT a duplicate:
	// it is a genuine stream restart and must reset the session.
	if err := WriteFrame(node.conn, FrameSampleChunk, chunkAt(t, 1, 0)); err != nil {
		t.Fatal(err)
	}
	evs = collectChunks(t, l, 1)
	if !evs[0].Reset {
		t.Fatal("live stream restart treated as duplicate")
	}
	if got := l.DuplicateChunks(); got != 2 {
		t.Fatalf("duplicates = %d, want 2", got)
	}

	// A replay for a stream with no cursor (failover target that never
	// saw it) is accepted, establishing the cursor.
	if err := WriteFrame(node.conn, FrameSampleReplay, MarshalOrDie(t, SampleChunk{
		NodeID: 9, StreamID: 3, Seq: 4, Fs: 1000, Start: 150, Samples: make([]float64, 50),
	})); err != nil {
		t.Fatal(err)
	}
	evs = collectChunks(t, l, 1)
	if evs[0].StreamID != 3 || len(evs[0].Samples) != 50 {
		t.Fatalf("replay onto cold stream delivered %+v", evs[0])
	}
}

// MarshalOrDie marshals a chunk or fails the test.
func MarshalOrDie(t *testing.T, c SampleChunk) []byte {
	t.Helper()
	body, err := MarshalSampleChunk(c)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// A multi-address node fails over transparently: when its primary
// dies mid-stream, the next chunk rotates the node to the standby
// address and the buffered tail is retransmitted there as marked
// replays, so the standby sees the whole stream exactly once.
func TestNodeMultiAddressFailoverResendsTail(t *testing.T) {
	l1, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := ListenChunks("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	node, err := DialReliable(ctx, l1.Addr(), Hello{NodeID: 4, Name: "pole-4"}, RedialConfig{
		Addrs:       []string{l2.Addr()},
		Backoff:     Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		MaxDowntime: 10 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	samples := make([]float64, 50)
	for i := 0; i < 5; i++ {
		if err := node.StreamChunk(8, 1000, samples); err != nil {
			t.Fatal(err)
		}
	}
	evs := collectChunks(t, l1, 5)
	key := uint64(4)<<32 | 8

	// Kill the primary; the next chunk must land on the standby,
	// preceded by the resent tail.
	l1.Close()
	if err := node.StreamChunk(8, 1000, samples); err != nil {
		t.Fatalf("chunk after primary death: %v", err)
	}
	evs = append(evs, collectChunks(t, l2, 6)...)

	if got := node.Resent(); got != 5 {
		t.Fatalf("node resent %d chunks, want 5", got)
	}
	total := 0
	for _, ev := range evs {
		if ev.Session != key {
			t.Fatalf("event for session %d, want %d", ev.Session, key)
		}
		if ev.Reset {
			t.Fatal("failover produced a continuity reset")
		}
		total += len(ev.Samples)
	}
	// 5 chunks on the primary + (5 replayed + 1 live) on the standby:
	// the stream is complete on the standby, with no gap and no reset.
	if total != 11*50 {
		t.Fatalf("delivered %d samples across failover, want %d", total, 11*50)
	}
	if got := l2.DuplicateChunks(); got != 0 {
		t.Fatalf("standby counted %d duplicates, want 0 (it never saw the stream)", got)
	}
}
