// Package optics models the unmodulated ambient light sources that
// power the passive channel: a point Lambertian LED lamp (the paper's
// controlled dark-room emitter), fluorescent/incandescent ceiling
// lights with the 100 Hz AC ripple that makes Fig. 7's signal
// "thicker", and the sun (the Sec. 5 outdoor emitter). A source
// reports the illuminance (lux) it deposits on a ground point at a
// given time; the channel then reflects that off the scene into the
// receiver.
package optics

import (
	"fmt"
	"math"
)

// Source is an unmodulated ambient light source.
type Source interface {
	// IlluminanceAt returns the illuminance (lux) on the ground plane
	// at horizontal position x (meters, along the motion axis) at time
	// t (seconds).
	IlluminanceAt(x, t float64) float64
	// Name identifies the source type for traces and experiment logs.
	Name() string
}

// SteadySource is an optional capability: sources whose illuminance
// does not depend on time. The channel renderer uses it to evaluate
// the footprint illuminance once per render instead of once per
// sample.
type SteadySource interface {
	// SteadyIlluminance reports whether IlluminanceAt ignores t.
	SteadyIlluminance() bool
}

// UniformSource is an optional capability: sources whose illuminance
// does not depend on ground position. The channel renderer uses it to
// evaluate the illuminance once per time step instead of once per
// footprint point.
type UniformSource interface {
	// UniformIlluminance reports whether IlluminanceAt ignores x.
	UniformIlluminance() bool
}

// PointLamp is a Lambertian point source (the LED lamp of Sec. 4.1)
// at height Height above the ground and horizontal position X.
type PointLamp struct {
	// X is the horizontal position of the lamp (m).
	X float64
	// Height above the ground plane (m); must be > 0.
	Height float64
	// Intensity is the luminous intensity on-axis (candela).
	Intensity float64
	// LambertOrder m shapes the beam: radiant intensity falls as
	// cos^m(phi) off-axis. m = 1 is an ideal Lambertian emitter; LED
	// lamps with lenses have m of several tens. Values < 1 are
	// clamped to 1.
	LambertOrder float64
}

// Name implements Source.
func (p PointLamp) Name() string { return "point-lamp" }

// SteadyIlluminance implements SteadySource: the lamp is unmodulated.
func (p PointLamp) SteadyIlluminance() bool { return true }

// IlluminanceAt computes E = I * cos^m(phi) * cos(theta) / d^2 where
// phi is the emission angle off the lamp's downward axis, theta the
// incidence angle at the ground (equal to phi for a level ground
// plane) and d the slant distance.
func (p PointLamp) IlluminanceAt(x, _ float64) float64 {
	if p.Height <= 0 {
		return 0
	}
	dx := x - p.X
	d2 := dx*dx + p.Height*p.Height
	d := math.Sqrt(d2)
	cos := p.Height / d
	m := p.LambertOrder
	if m < 1 {
		m = 1
	}
	return p.Intensity * math.Pow(cos, m) * cos / d2
}

// CenterIlluminance returns the lux directly under the lamp; handy
// for calibrating experiments by their reported noise floor.
func (p PointLamp) CenterIlluminance() float64 {
	if p.Height <= 0 {
		return 0
	}
	return p.Intensity / (p.Height * p.Height)
}

// LampForLux builds a PointLamp at (x, height) whose illuminance
// directly underneath equals lux.
func LampForLux(x, height, lux, lambertOrder float64) PointLamp {
	return PointLamp{X: x, Height: height, Intensity: lux * height * height, LambertOrder: lambertOrder}
}

// CeilingLight models mains-powered luminaires (fluorescent tubes or
// incandescent bulbs, Sec. 4.1 "Impact of other light sources"). The
// illuminance is roughly uniform over the small experiment area but
// carries a double-line-frequency ripple from the AC supply, plus
// optional harmonics. This ripple is what the paper attributes the
// "larger variance in the signal, 'thicker lines'" to.
type CeilingLight struct {
	// Lux is the mean illuminance on the work plane.
	Lux float64
	// RippleDepth is the peak ripple amplitude relative to the mean
	// (e.g. 0.1 = ±10%). Fluorescent tubes on magnetic ballasts reach
	// 0.2-0.4; incandescent bulbs ~0.05-0.15 (thermal inertia).
	RippleDepth float64
	// MainsHz is the line frequency (50 in Europe); the optical
	// ripple appears at twice this frequency.
	MainsHz float64
	// Harmonics adds odd harmonics of the ripple with amplitudes
	// Harmonics[i] relative to the fundamental ripple (i=0 is the 2nd
	// optical harmonic, i.e. 4x mains).
	Harmonics []float64
	// Phase offsets the ripple (radians).
	Phase float64
}

// Name implements Source.
func (c CeilingLight) Name() string { return "ceiling-light" }

// UniformIlluminance implements UniformSource: ceiling flood lighting
// is uniform over the small experiment area.
func (c CeilingLight) UniformIlluminance() bool { return true }

// SteadyIlluminance implements SteadySource: constant when there is
// no AC ripple.
func (c CeilingLight) SteadyIlluminance() bool { return c.RippleDepth == 0 }

// IlluminanceAt implements Source: uniform in x, rippling in t.
func (c CeilingLight) IlluminanceAt(_, t float64) float64 {
	mains := c.MainsHz
	if mains <= 0 {
		mains = 50
	}
	w := 2 * math.Pi * 2 * mains // optical ripple at 2x line frequency
	ripple := c.RippleDepth * math.Sin(w*t+c.Phase)
	for i, h := range c.Harmonics {
		ripple += c.RippleDepth * h * math.Sin(w*float64(i+2)*t+c.Phase)
	}
	e := c.Lux * (1 + ripple)
	if e < 0 {
		e = 0
	}
	return e
}

// Sun models daylight: spatially uniform and constant over the
// seconds-long duration of one packet. Lux is the ambient noise floor
// the paper reports per experiment (e.g. 6200 lux, 450 lux, 100 lux).
type Sun struct {
	// Lux is the ground illuminance.
	Lux float64
	// SlowDriftAmp optionally adds a very slow illuminance drift
	// (clouds) of this relative amplitude over DriftPeriod.
	SlowDriftAmp float64
	// DriftPeriod is the drift period in seconds (default 60).
	DriftPeriod float64
}

// Name implements Source.
func (s Sun) Name() string { return "sun" }

// UniformIlluminance implements UniformSource: daylight floods the
// scene.
func (s Sun) UniformIlluminance() bool { return true }

// SteadyIlluminance implements SteadySource: constant unless a cloud
// drift is configured.
func (s Sun) SteadyIlluminance() bool { return s.SlowDriftAmp <= 0 }

// IlluminanceAt implements Source.
func (s Sun) IlluminanceAt(_, t float64) float64 {
	e := s.Lux
	if s.SlowDriftAmp > 0 {
		period := s.DriftPeriod
		if period <= 0 {
			period = 60
		}
		e *= 1 + s.SlowDriftAmp*math.Sin(2*math.Pi*t/period)
	}
	if e < 0 {
		e = 0
	}
	return e
}

// Composite sums several sources (e.g. ceiling lights plus daylight
// through a window).
type Composite struct {
	Sources []Source
}

// Name implements Source.
func (c Composite) Name() string {
	return fmt.Sprintf("composite(%d)", len(c.Sources))
}

// SteadyIlluminance implements SteadySource: steady iff every child
// is.
func (c Composite) SteadyIlluminance() bool {
	for _, s := range c.Sources {
		ss, ok := s.(SteadySource)
		if !ok || !ss.SteadyIlluminance() {
			return false
		}
	}
	return true
}

// UniformIlluminance implements UniformSource: uniform iff every
// child is.
func (c Composite) UniformIlluminance() bool {
	for _, s := range c.Sources {
		us, ok := s.(UniformSource)
		if !ok || !us.UniformIlluminance() {
			return false
		}
	}
	return true
}

// IlluminanceAt implements Source.
func (c Composite) IlluminanceAt(x, t float64) float64 {
	var sum float64
	for _, s := range c.Sources {
		sum += s.IlluminanceAt(x, t)
	}
	return sum
}

// MeanLux estimates the time-averaged illuminance of a source at
// ground position x by sampling n points over the window [0, dur].
// Used to report the "noise floor" of an experiment configuration.
func MeanLux(s Source, x, dur float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		t := dur * float64(i) / float64(n)
		sum += s.IlluminanceAt(x, t)
	}
	return sum / float64(n)
}
