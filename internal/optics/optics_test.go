package optics

import (
	"math"
	"testing"
)

func TestPointLampInverseSquare(t *testing.T) {
	lamp := PointLamp{Height: 0.2, Intensity: 10, LambertOrder: 1}
	e1 := lamp.IlluminanceAt(0, 0)
	lamp2 := lamp
	lamp2.Height = 0.4
	e2 := lamp2.IlluminanceAt(0, 0)
	if math.Abs(e1/e2-4) > 1e-9 {
		t.Fatalf("doubling height should quarter the lux: %.3f vs %.3f", e1, e2)
	}
}

func TestPointLampOffAxisFalloff(t *testing.T) {
	lamp := PointLamp{Height: 0.3, Intensity: 10, LambertOrder: 4}
	center := lamp.IlluminanceAt(0, 0)
	off := lamp.IlluminanceAt(0.3, 0) // 45 degrees off axis
	if off >= center {
		t.Fatalf("off-axis brighter than center: %.3f vs %.3f", off, center)
	}
	// Higher Lambert order narrows the beam.
	narrow := lamp
	narrow.LambertOrder = 20
	if narrow.IlluminanceAt(0.3, 0) >= off {
		t.Fatal("higher Lambert order should dim off-axis points")
	}
}

func TestLampForLuxCalibration(t *testing.T) {
	lamp := LampForLux(0, 0.25, 300, 4)
	if got := lamp.IlluminanceAt(0, 0); math.Abs(got-300) > 1e-9 {
		t.Fatalf("center lux %.3f, want 300", got)
	}
	if got := lamp.CenterIlluminance(); math.Abs(got-300) > 1e-9 {
		t.Fatalf("CenterIlluminance %.3f", got)
	}
}

func TestPointLampZeroHeight(t *testing.T) {
	lamp := PointLamp{Height: 0, Intensity: 10}
	if lamp.IlluminanceAt(0, 0) != 0 {
		t.Fatal("zero-height lamp should emit nothing")
	}
	if lamp.CenterIlluminance() != 0 {
		t.Fatal("zero-height center illuminance should be 0")
	}
}

func TestCeilingLightRipple(t *testing.T) {
	c := CeilingLight{Lux: 200, RippleDepth: 0.2, MainsHz: 50}
	// Ripple at 100 Hz: period 10 ms. Sample a full period.
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	var sum float64
	n := 1000
	for i := 0; i < n; i++ {
		ti := 0.01 * float64(i) / float64(n)
		e := c.IlluminanceAt(0, ti)
		sum += e
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	if math.Abs(sum/float64(n)-200) > 1 {
		t.Fatalf("mean lux %.2f, want ~200", sum/float64(n))
	}
	if math.Abs(hi-240) > 1 || math.Abs(lo-160) > 1 {
		t.Fatalf("ripple extremes %.1f..%.1f, want 160..240", lo, hi)
	}
	// Spatially uniform.
	if c.IlluminanceAt(5, 0.003) != c.IlluminanceAt(-5, 0.003) {
		t.Fatal("ceiling light should be uniform in x")
	}
}

func TestCeilingLightRipplePeriod(t *testing.T) {
	c := CeilingLight{Lux: 100, RippleDepth: 0.1, MainsHz: 50}
	// The optical ripple is at 2x mains: value at t and t+10ms match.
	a := c.IlluminanceAt(0, 0.0012)
	b := c.IlluminanceAt(0, 0.0112)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("ripple not periodic at 100 Hz: %.6f vs %.6f", a, b)
	}
}

func TestCeilingLightNeverNegative(t *testing.T) {
	c := CeilingLight{Lux: 100, RippleDepth: 2, MainsHz: 50} // absurd depth
	for i := 0; i < 100; i++ {
		if e := c.IlluminanceAt(0, float64(i)*0.0001); e < 0 {
			t.Fatalf("negative illuminance %.3f", e)
		}
	}
}

func TestCeilingLightHarmonics(t *testing.T) {
	base := CeilingLight{Lux: 100, RippleDepth: 0.1, MainsHz: 50}
	rich := CeilingLight{Lux: 100, RippleDepth: 0.1, MainsHz: 50, Harmonics: []float64{0.5}}
	same := true
	for i := 0; i < 50; i++ {
		ti := float64(i) * 0.0002
		if math.Abs(base.IlluminanceAt(0, ti)-rich.IlluminanceAt(0, ti)) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("harmonics had no effect")
	}
}

func TestSunConstantAndDrift(t *testing.T) {
	s := Sun{Lux: 6200}
	if s.IlluminanceAt(0, 0) != s.IlluminanceAt(100, 3600) {
		t.Fatal("sun without drift should be constant")
	}
	d := Sun{Lux: 6200, SlowDriftAmp: 0.1, DriftPeriod: 60}
	if d.IlluminanceAt(0, 15) == d.IlluminanceAt(0, 45) {
		t.Fatal("drifting sun should vary")
	}
	// Mean over a full period is the nominal lux.
	if got := MeanLux(d, 0, 60, 600); math.Abs(got-6200) > 31 {
		t.Fatalf("drift mean %.1f, want ~6200", got)
	}
}

func TestCompositeSums(t *testing.T) {
	c := Composite{Sources: []Source{
		Sun{Lux: 100},
		CeilingLight{Lux: 50, MainsHz: 50},
	}}
	if got := c.IlluminanceAt(0, 0); math.Abs(got-150) > 1e-9 {
		t.Fatalf("composite %.2f, want 150", got)
	}
	if c.Name() != "composite(2)" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestMeanLux(t *testing.T) {
	if got := MeanLux(Sun{Lux: 450}, 0, 1, 16); got != 450 {
		t.Fatalf("mean lux %.2f", got)
	}
	// n < 1 clamps to one sample.
	if got := MeanLux(Sun{Lux: 450}, 0, 1, 0); got != 450 {
		t.Fatalf("mean lux with n=0: %.2f", got)
	}
}
