package coding

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestManchesterRoundTrip(t *testing.T) {
	for _, bits := range [][]Bit{
		{}, {0}, {1}, {0, 1}, {1, 0}, {1, 1, 0, 0, 1, 0, 1, 1},
	} {
		symbols := ManchesterEncode(bits)
		if len(symbols) != 2*len(bits) {
			t.Fatalf("encoded length %d, want %d", len(symbols), 2*len(bits))
		}
		got, err := ManchesterDecode(symbols)
		if err != nil {
			t.Fatal(err)
		}
		if HammingDistance(got, bits) != 0 {
			t.Fatalf("roundtrip %v -> %v", bits, got)
		}
	}
}

func TestManchesterMapping(t *testing.T) {
	// The paper's mapping: '0' -> HIGH-LOW, '1' -> LOW-HIGH (Sec. 4).
	symbols := ManchesterEncode([]Bit{0, 1})
	want := []Symbol{High, Low, Low, High}
	for i := range want {
		if symbols[i] != want[i] {
			t.Fatalf("mapping %v, want %v", symbols, want)
		}
	}
}

func TestManchesterDecodeErrors(t *testing.T) {
	if _, err := ManchesterDecode([]Symbol{High}); !errors.Is(err, ErrOddSymbolCount) {
		t.Fatalf("odd count: %v", err)
	}
	if _, err := ManchesterDecode([]Symbol{High, High}); !errors.Is(err, ErrInvalidManchester) {
		t.Fatalf("HH: %v", err)
	}
	if _, err := ManchesterDecode([]Symbol{Low, Low}); !errors.Is(err, ErrInvalidManchester) {
		t.Fatalf("LL: %v", err)
	}
}

func TestPacketSymbolsAndStrings(t *testing.T) {
	p := MustPacket("10")
	symbols := p.Symbols()
	if len(symbols) != PreambleLen+4 {
		t.Fatalf("symbol count %d", len(symbols))
	}
	for i, want := range Preamble {
		if symbols[i] != want {
			t.Fatalf("preamble symbol %d is %v", i, symbols[i])
		}
	}
	if s := p.SymbolString(); s != "HLHL.LHHL" {
		t.Fatalf("symbol string %q", s)
	}
	if s := p.BitString(); s != "10" {
		t.Fatalf("bit string %q", s)
	}
	empty := Packet{}
	if s := empty.SymbolString(); s != "HLHL" {
		t.Fatalf("empty packet symbol string %q", s)
	}
}

func TestNewPacketRejectsBadBits(t *testing.T) {
	if _, err := NewPacket("01x"); err == nil {
		t.Fatal("expected error for non-binary character")
	}
	if _, err := NewPacket(""); err != nil {
		t.Fatalf("empty payload should be allowed: %v", err)
	}
}

func TestParsePacketRoundTrip(t *testing.T) {
	for _, payload := range []string{"", "0", "1", "0110", "111000"} {
		p := MustPacket(payload)
		got, err := ParsePacket(p.Symbols())
		if err != nil {
			t.Fatalf("%q: %v", payload, err)
		}
		if got.BitString() != payload {
			t.Fatalf("roundtrip %q -> %q", payload, got.BitString())
		}
	}
}

func TestParsePacketRejectsBadPreamble(t *testing.T) {
	bad := []Symbol{Low, High, Low, High} // inverted preamble
	if _, err := ParsePacket(bad); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("inverted preamble: %v", err)
	}
	if _, err := ParsePacket([]Symbol{High, Low}); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("short stream: %v", err)
	}
}

func TestSymbolsFromString(t *testing.T) {
	got, err := SymbolsFromString("HLHL.LH hl")
	if err != nil {
		t.Fatal(err)
	}
	want := []Symbol{High, Low, High, Low, Low, High, High, Low}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symbol %d = %v", i, got[i])
		}
	}
	if _, err := SymbolsFromString("HLX"); err == nil {
		t.Fatal("expected error for invalid symbol")
	}
}

func TestNRZRoundTrip(t *testing.T) {
	bits := []Bit{1, 0, 0, 1, 1, 1, 0}
	symbols := NRZEncode(bits)
	if len(symbols) != len(bits) {
		t.Fatalf("NRZ length %d", len(symbols))
	}
	got := NRZDecode(symbols)
	if HammingDistance(got, bits) != 0 {
		t.Fatalf("NRZ roundtrip %v -> %v", bits, got)
	}
}

func TestHammingDistance(t *testing.T) {
	if d := HammingDistance([]Bit{0, 1, 1}, []Bit{0, 1, 1}); d != 0 {
		t.Fatalf("equal distance %d", d)
	}
	if d := HammingDistance([]Bit{0, 0, 0}, []Bit{1, 1, 1}); d != 3 {
		t.Fatalf("opposite distance %d", d)
	}
	// Length mismatch counts excess positions.
	if d := HammingDistance([]Bit{0, 0}, []Bit{0, 0, 1, 1}); d != 2 {
		t.Fatalf("mismatched length distance %d", d)
	}
}

func TestSymbolHammingDistance(t *testing.T) {
	a := []Symbol{High, Low, High}
	b := []Symbol{High, High, High}
	if d := SymbolHammingDistance(a, b); d != 1 {
		t.Fatalf("distance %d", d)
	}
	if d := SymbolHammingDistance(a, a[:2]); d != 1 {
		t.Fatalf("length mismatch distance %d", d)
	}
}

func TestManchesterRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]Bit, len(raw))
		for i, b := range raw {
			bits[i] = Bit(b & 1)
		}
		got, err := ManchesterDecode(ManchesterEncode(bits))
		return err == nil && HammingDistance(got, bits) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketSymbolsAlwaysParseProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		bits := make([]Bit, len(raw))
		for i, b := range raw {
			bits[i] = Bit(b & 1)
		}
		p := Packet{Data: bits}
		got, err := ParsePacket(p.Symbols())
		return err == nil && HammingDistance(got.Data, bits) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodebookInvariants(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{4, 1}, {6, 2}, {8, 3}, {8, 5}, {10, 4}} {
		cb, err := NewCodebook(tc.n, tc.d, 0)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		if got := cb.VerifyDistances(); got < tc.d {
			t.Fatalf("n=%d d=%d: actual min distance %d", tc.n, tc.d, got)
		}
		if cb.BitsPerWord() != tc.n {
			t.Fatalf("bits per word %d", cb.BitsPerWord())
		}
		// Clean codewords decode to themselves.
		for i := 0; i < cb.Len(); i++ {
			w, err := cb.Encode(i)
			if err != nil {
				t.Fatal(err)
			}
			idx, dist := cb.Decode(w)
			if idx != i || dist != 0 {
				t.Fatalf("clean decode of word %d gave %d (dist %d)", i, idx, dist)
			}
		}
	}
}

func TestCodebookCorrectsErrors(t *testing.T) {
	cb, err := NewCodebook(8, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	canFix := cb.CorrectableErrors()
	if canFix != 2 {
		t.Fatalf("correctable errors %d, want 2", canFix)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		idx := rng.Intn(cb.Len())
		w, err := cb.Encode(idx)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(len(w))
		for f := 0; f < canFix; f++ {
			w[perm[f]] ^= 1
		}
		got, _ := cb.Decode(w)
		if got != idx {
			t.Fatalf("trial %d: %d errors not corrected (got %d want %d)", trial, canFix, got, idx)
		}
	}
}

func TestCodebookMaxWordsAndErrors(t *testing.T) {
	cb, err := NewCodebook(8, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 5 {
		t.Fatalf("capped codebook has %d words", cb.Len())
	}
	if _, err := NewCodebook(0, 1, 0); err == nil {
		t.Fatal("expected error for zero-length words")
	}
	if _, err := NewCodebook(8, 9, 0); err == nil {
		t.Fatal("expected error for distance > length")
	}
	if _, err := cb.Encode(99); err == nil {
		t.Fatal("expected error for out-of-range index")
	}
}

func TestCodebookSizeShrinksWithDistance(t *testing.T) {
	prev := 1 << 8
	for d := 1; d <= 5; d++ {
		cb, err := NewCodebook(8, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cb.Len() > prev {
			t.Fatalf("codebook grew from %d to %d at distance %d", prev, cb.Len(), d)
		}
		prev = cb.Len()
	}
}
