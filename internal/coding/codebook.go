package coding

import (
	"errors"
	"fmt"
)

// Codebook is a set of codewords with a guaranteed minimum pairwise
// Hamming distance. The paper (Sec. 4.2) notes that under channel
// distortion the system cannot use all 2^N codes; it must restrict
// itself to far fewer codes "making sure that their inter-Hamming
// distances are maximized". A Codebook provides exactly that restricted
// code set plus nearest-codeword decoding.
type Codebook struct {
	n       int // bits per codeword
	minDist int
	words   [][]Bit
}

// NewCodebook greedily selects codewords of length nBits whose pairwise
// Hamming distance is at least minDist, scanning the 2^n space in Gray
// order (adjacent candidates differ in one bit, which spreads selected
// words more evenly than natural order). maxWords <= 0 means no cap.
func NewCodebook(nBits, minDist, maxWords int) (*Codebook, error) {
	if nBits < 1 || nBits > 20 {
		return nil, errors.New("coding: codeword length must be in [1, 20]")
	}
	if minDist < 1 || minDist > nBits {
		return nil, fmt.Errorf("coding: min distance %d out of range [1, %d]", minDist, nBits)
	}
	cb := &Codebook{n: nBits, minDist: minDist}
	total := 1 << nBits
	for i := 0; i < total; i++ {
		g := i ^ (i >> 1) // Gray code
		w := wordFromUint(uint(g), nBits)
		ok := true
		for _, existing := range cb.words {
			if HammingDistance(w, existing) < minDist {
				ok = false
				break
			}
		}
		if ok {
			cb.words = append(cb.words, w)
			if maxWords > 0 && len(cb.words) == maxWords {
				break
			}
		}
	}
	if len(cb.words) == 0 {
		return nil, errors.New("coding: empty codebook")
	}
	return cb, nil
}

func wordFromUint(v uint, n int) []Bit {
	w := make([]Bit, n)
	for i := 0; i < n; i++ {
		if v&(1<<uint(n-1-i)) != 0 {
			w[i] = 1
		}
	}
	return w
}

// Len returns the number of codewords.
func (cb *Codebook) Len() int { return len(cb.words) }

// BitsPerWord returns the codeword length in bits.
func (cb *Codebook) BitsPerWord() int { return cb.n }

// MinDistance returns the guaranteed minimum pairwise Hamming distance.
func (cb *Codebook) MinDistance() int { return cb.minDist }

// Word returns codeword i (a copy).
func (cb *Codebook) Word(i int) []Bit {
	w := make([]Bit, cb.n)
	copy(w, cb.words[i])
	return w
}

// Words returns copies of all codewords.
func (cb *Codebook) Words() [][]Bit {
	out := make([][]Bit, len(cb.words))
	for i := range cb.words {
		out[i] = cb.Word(i)
	}
	return out
}

// Encode returns the codeword for message index idx.
func (cb *Codebook) Encode(idx int) ([]Bit, error) {
	if idx < 0 || idx >= len(cb.words) {
		return nil, fmt.Errorf("coding: message index %d out of range [0, %d)", idx, len(cb.words))
	}
	return cb.Word(idx), nil
}

// Decode maps received (possibly corrupted) bits to the nearest
// codeword index and its Hamming distance. With minimum distance d, up
// to floor((d-1)/2) bit errors are corrected unambiguously.
func (cb *Codebook) Decode(received []Bit) (idx, distance int) {
	best, bestDist := 0, HammingDistance(received, cb.words[0])
	for i := 1; i < len(cb.words); i++ {
		if d := HammingDistance(received, cb.words[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// CorrectableErrors returns the number of bit errors the codebook can
// always correct: floor((minDist-1)/2).
func (cb *Codebook) CorrectableErrors() int { return (cb.minDist - 1) / 2 }

// VerifyDistances recomputes all pairwise distances and reports the
// true minimum; used by tests as an invariant check.
func (cb *Codebook) VerifyDistances() int {
	if len(cb.words) < 2 {
		return cb.n
	}
	min := cb.n + 1
	for i := 0; i < len(cb.words); i++ {
		for j := i + 1; j < len(cb.words); j++ {
			if d := HammingDistance(cb.words[i], cb.words[j]); d < min {
				min = d
			}
		}
	}
	return min
}
