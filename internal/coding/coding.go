// Package coding implements the paper's passive packet format
// (Sec. 4, Fig. 4): a fixed 4-symbol preamble HIGH-LOW-HIGH-LOW
// followed by a Manchester-coded data field, where a '0' bit maps to
// HIGH-LOW and a '1' bit maps to LOW-HIGH. Symbols are physical
// stripes of reflective material on a mobile object; this package
// only deals with the logical layer (bits <-> symbols), the physical
// mapping lives in internal/tag.
package coding

import (
	"errors"
	"fmt"
	"strings"
)

// Symbol is one reflective stripe: HIGH (strong reflection, e.g.
// aluminum tape) or LOW (weak reflection, e.g. black paper napkin).
type Symbol uint8

const (
	// Low is the weak-reflection symbol.
	Low Symbol = iota
	// High is the strong-reflection symbol.
	High
)

// String returns "H" or "L", matching the paper's notation.
func (s Symbol) String() string {
	if s == High {
		return "H"
	}
	return "L"
}

// Preamble is the fixed packet preamble: HIGH-LOW-HIGH-LOW (Fig. 4).
var Preamble = []Symbol{High, Low, High, Low}

// PreambleLen is the number of symbols in the preamble.
const PreambleLen = 4

// Bit is a single data bit (0 or 1).
type Bit uint8

// ErrOddSymbolCount is returned when decoding a symbol sequence whose
// length is not a multiple of two.
var ErrOddSymbolCount = errors.New("coding: Manchester symbol count must be even")

// ErrInvalidManchester is returned when a symbol pair is HH or LL,
// which has no Manchester interpretation.
var ErrInvalidManchester = errors.New("coding: invalid Manchester pair (HH or LL)")

// ErrNoPreamble is returned by ParsePacket when the symbol stream does
// not start with the HLHL preamble.
var ErrNoPreamble = errors.New("coding: symbol stream does not start with HLHL preamble")

// ManchesterEncode maps bits to symbols: 0 -> HL, 1 -> LH.
func ManchesterEncode(bits []Bit) []Symbol {
	out := make([]Symbol, 0, 2*len(bits))
	for _, b := range bits {
		if b == 0 {
			out = append(out, High, Low)
		} else {
			out = append(out, Low, High)
		}
	}
	return out
}

// ManchesterDecode maps symbol pairs back to bits. HL -> 0, LH -> 1.
func ManchesterDecode(symbols []Symbol) ([]Bit, error) {
	if len(symbols)%2 != 0 {
		return nil, ErrOddSymbolCount
	}
	bits := make([]Bit, 0, len(symbols)/2)
	for i := 0; i < len(symbols); i += 2 {
		a, b := symbols[i], symbols[i+1]
		switch {
		case a == High && b == Low:
			bits = append(bits, 0)
		case a == Low && b == High:
			bits = append(bits, 1)
		default:
			return nil, fmt.Errorf("%w at pair %d (%s%s)", ErrInvalidManchester, i/2, a, b)
		}
	}
	return bits, nil
}

// Packet is the logical content of one reflective-surface packet.
type Packet struct {
	// Data is the payload bit string.
	Data []Bit
}

// NewPacket builds a packet from a bit string such as "10" or
// "0110". Any character other than '0' or '1' is an error.
func NewPacket(bitstring string) (Packet, error) {
	bits := make([]Bit, 0, len(bitstring))
	for i, c := range bitstring {
		switch c {
		case '0':
			bits = append(bits, 0)
		case '1':
			bits = append(bits, 1)
		default:
			return Packet{}, fmt.Errorf("coding: invalid bit %q at position %d", c, i)
		}
	}
	return Packet{Data: bits}, nil
}

// MustPacket is NewPacket that panics on invalid input; for tests and
// fixed example payloads.
func MustPacket(bitstring string) Packet {
	p, err := NewPacket(bitstring)
	if err != nil {
		panic(err)
	}
	return p
}

// Symbols returns the full on-surface symbol sequence:
// preamble (HLHL) followed by the Manchester-coded data field.
func (p Packet) Symbols() []Symbol {
	out := make([]Symbol, 0, PreambleLen+2*len(p.Data))
	out = append(out, Preamble...)
	out = append(out, ManchesterEncode(p.Data)...)
	return out
}

// BitString renders the payload as a "0"/"1" string.
func (p Packet) BitString() string {
	var sb strings.Builder
	for _, b := range p.Data {
		if b == 0 {
			sb.WriteByte('0')
		} else {
			sb.WriteByte('1')
		}
	}
	return sb.String()
}

// SymbolString renders symbols as e.g. "HLHL.LHHL" with a dot between
// preamble and data, matching the paper's notation.
func (p Packet) SymbolString() string {
	var sb strings.Builder
	for _, s := range Preamble {
		sb.WriteString(s.String())
	}
	data := ManchesterEncode(p.Data)
	if len(data) > 0 {
		sb.WriteByte('.')
		for _, s := range data {
			sb.WriteString(s.String())
		}
	}
	return sb.String()
}

// ParsePacket validates that symbols start with the preamble and
// Manchester-decodes the remainder into a Packet.
// ValidPacket reports whether ParsePacket would succeed, without
// building the payload slice or an error value. The decoder's timing
// search asks this for hundreds of candidate grids per packet and
// discards everything but the answer.
func ValidPacket(symbols []Symbol) bool {
	if len(symbols) < PreambleLen {
		return false
	}
	for i, want := range Preamble {
		if symbols[i] != want {
			return false
		}
	}
	rest := symbols[PreambleLen:]
	if len(rest)%2 != 0 {
		return false
	}
	for i := 0; i < len(rest); i += 2 {
		a, b := rest[i], rest[i+1]
		if !(a == High && b == Low) && !(a == Low && b == High) {
			return false
		}
	}
	return true
}

func ParsePacket(symbols []Symbol) (Packet, error) {
	if len(symbols) < PreambleLen {
		return Packet{}, ErrNoPreamble
	}
	for i, want := range Preamble {
		if symbols[i] != want {
			return Packet{}, ErrNoPreamble
		}
	}
	bits, err := ManchesterDecode(symbols[PreambleLen:])
	if err != nil {
		return Packet{}, err
	}
	return Packet{Data: bits}, nil
}

// SymbolsFromString parses a string like "HLHL.LHHL" (dots and spaces
// ignored) into a symbol sequence.
func SymbolsFromString(s string) ([]Symbol, error) {
	var out []Symbol
	for i, c := range s {
		switch c {
		case 'H', 'h':
			out = append(out, High)
		case 'L', 'l':
			out = append(out, Low)
		case '.', ' ', '-':
			// separators allowed
		default:
			return nil, fmt.Errorf("coding: invalid symbol %q at position %d", c, i)
		}
	}
	return out, nil
}

// NRZEncode maps bits directly to symbols (0 -> L, 1 -> H) with no
// mid-bit transition. It exists as the ablation baseline against
// Manchester coding: long runs of identical bits produce long
// constant-reflectance stretches that defeat the adaptive threshold
// decoder under FoV-induced smoothing.
func NRZEncode(bits []Bit) []Symbol {
	out := make([]Symbol, len(bits))
	for i, b := range bits {
		if b == 1 {
			out[i] = High
		}
	}
	return out
}

// NRZDecode maps symbols back to bits (L -> 0, H -> 1).
func NRZDecode(symbols []Symbol) []Bit {
	out := make([]Bit, len(symbols))
	for i, s := range symbols {
		if s == High {
			out[i] = 1
		}
	}
	return out
}

// HammingDistance counts positions where the two bit strings differ;
// if lengths differ, the excess positions of the longer string all
// count as differences.
func HammingDistance(a, b []Bit) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	d += len(a) - n + len(b) - n
	return d
}

// SymbolHammingDistance counts positions where two symbol sequences
// differ, with length mismatch counted as above.
func SymbolHammingDistance(a, b []Symbol) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	d += len(a) - n + len(b) - n
	return d
}
