package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Basics(t *testing.T) {
	a := Vec2{3, 4}
	if a.Norm() != 5 {
		t.Fatalf("norm %v", a.Norm())
	}
	u := a.Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Fatalf("unit norm %v", u.Norm())
	}
	if (Vec2{}).Unit() != (Vec2{}) {
		t.Fatal("zero vector unit should stay zero")
	}
	if got := a.Add(Vec2{1, 1}).Sub(Vec2{1, 1}); got != a {
		t.Fatalf("add/sub roundtrip %v", got)
	}
	if got := a.Scale(2); got != (Vec2{6, 8}) {
		t.Fatalf("scale %v", got)
	}
	if got := a.Dot(Vec2{1, 0}); got != 3 {
		t.Fatalf("dot %v", got)
	}
}

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 2}
	if a.Norm() != 3 {
		t.Fatalf("norm %v", a.Norm())
	}
	if math.Abs(a.Unit().Norm()-1) > 1e-12 {
		t.Fatal("unit norm")
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Fatal("zero vector unit should stay zero")
	}
	if got := a.Add(a).Sub(a); got != a {
		t.Fatalf("add/sub %v", got)
	}
	if got := a.Scale(3).Dot(Vec3{1, 0, 0}); got != 3 {
		t.Fatalf("dot %v", got)
	}
}

func TestAngleConversion(t *testing.T) {
	if math.Abs(Radians(180)-math.Pi) > 1e-12 {
		t.Fatal("radians")
	}
	if math.Abs(Degrees(math.Pi/2)-90) > 1e-12 {
		t.Fatal("degrees")
	}
	// Round trip.
	if math.Abs(Degrees(Radians(37.5))-37.5) > 1e-12 {
		t.Fatal("roundtrip")
	}
}

func TestConeFootprint(t *testing.T) {
	c := NewConeDeg(45)
	if math.Abs(c.FootprintRadius(1)-1) > 1e-12 {
		t.Fatalf("45-degree cone at h=1: %v", c.FootprintRadius(1))
	}
	narrow := NewConeDeg(4)
	if r := narrow.FootprintRadius(1); math.Abs(r-math.Tan(Radians(4))) > 1e-12 {
		t.Fatalf("4-degree footprint %v", r)
	}
	if !c.Contains(0.5, 1) {
		t.Fatal("point inside cone rejected")
	}
	if c.Contains(1.5, 1) {
		t.Fatal("point outside cone accepted")
	}
	if c.Contains(0, 0) {
		t.Fatal("zero height should contain nothing")
	}
}

func TestIncidenceCosAndSlant(t *testing.T) {
	if got := IncidenceCos(0, 1); got != 1 {
		t.Fatalf("vertical ray cos %v", got)
	}
	if got := IncidenceCos(1, 1); math.Abs(got-math.Sqrt2/2) > 1e-12 {
		t.Fatalf("45-degree cos %v", got)
	}
	if got := IncidenceCos(0, 0); got != 1 {
		t.Fatalf("degenerate cos %v", got)
	}
	if got := SlantDistance(3, 4); got != 5 {
		t.Fatalf("slant %v", got)
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp")
	}
	if Lerp(0, 10, 0.25) != 2.5 {
		t.Fatal("lerp")
	}
}

func TestInterval(t *testing.T) {
	a := Interval{0, 2}
	b := Interval{1, 3}
	got := a.Intersect(b)
	if got.Lo != 1 || got.Hi != 2 {
		t.Fatalf("intersection %+v", got)
	}
	if got.Len() != 1 {
		t.Fatalf("length %v", got.Len())
	}
	empty := a.Intersect(Interval{5, 6})
	if empty.Len() != 0 {
		t.Fatalf("disjoint intersection has length %v", empty.Len())
	}
	if !a.Contains(1.5) || a.Contains(2.5) {
		t.Fatal("contains")
	}
	inv := Interval{3, 1}
	if inv.Len() != 0 {
		t.Fatal("inverted interval should have zero length")
	}
}

func TestUnitNormProperty(t *testing.T) {
	f := func(x, z float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		if math.Abs(x) > 1e150 || math.Abs(z) > 1e150 {
			return true
		}
		v := Vec2{x, z}
		if v.Norm() == 0 {
			return true
		}
		return math.Abs(v.Unit().Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectCommutativeProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) {
				return true
			}
		}
		i1 := Interval{math.Min(a, b), math.Max(a, b)}
		i2 := Interval{math.Min(c, d), math.Max(c, d)}
		x := i1.Intersect(i2)
		y := i2.Intersect(i1)
		return x.Len() == y.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
