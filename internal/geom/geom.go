// Package geom provides small geometric primitives used by the optical
// channel simulator: 2-D/3-D vectors, angle conversions and
// field-of-view (FoV) cone math.
//
// The simulator mostly works in a 2-D vertical slice: objects move
// along the x axis on the ground plane (z = 0) and receivers look
// straight down from height z = h. The FoV footprint of a downward
// receiver is the ground interval |x - x0| <= h*tan(psi) where psi is
// the FoV half-angle.
package geom

import "math"

// Vec2 is a point or direction in the vertical slice (x along the
// direction of motion, z up).
type Vec2 struct {
	X, Z float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Z) }

// Unit returns v normalized to unit length. The zero vector is
// returned unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Vec3 is a point or direction in 3-D space (x along motion, y
// lateral, z up). Used by the scene for lateral FoV sharing.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to unit length. The zero vector is
// returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Cone describes a field-of-view cone: the apex sits at the receiver,
// the axis points straight down, and HalfAngle is the half opening
// angle in radians.
type Cone struct {
	HalfAngle float64 // radians, in (0, pi/2)
}

// NewConeDeg returns a cone with the given half-angle in degrees.
func NewConeDeg(deg float64) Cone { return Cone{HalfAngle: Radians(deg)} }

// FootprintRadius returns the radius of the cone's intersection with a
// plane at distance h below the apex.
func (c Cone) FootprintRadius(h float64) float64 {
	return h * math.Tan(c.HalfAngle)
}

// Contains reports whether a ground point at horizontal offset dx from
// the apex, at distance h below it, lies inside the cone.
func (c Cone) Contains(dx, h float64) bool {
	if h <= 0 {
		return false
	}
	return math.Abs(dx) <= c.FootprintRadius(h)
}

// IncidenceCos returns cos(theta) for a ray from a ground point at
// horizontal offset dx to an apex at height h: the cosine of the angle
// between the ray and the vertical.
func IncidenceCos(dx, h float64) float64 {
	d := math.Hypot(dx, h)
	if d == 0 {
		return 1
	}
	return h / d
}

// SlantDistance returns the distance between a ground point at
// horizontal offset dx and an apex at height h.
func SlantDistance(dx, h float64) float64 { return math.Hypot(dx, h) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Interval is a closed interval on the ground line.
type Interval struct {
	Lo, Hi float64
}

// Len returns the interval length (zero for empty/inverted intervals).
func (iv Interval) Len() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	lo := math.Max(iv.Lo, o.Lo)
	hi := math.Min(iv.Hi, o.Hi)
	if hi < lo {
		return Interval{lo, lo}
	}
	return Interval{lo, hi}
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }
