// Package tag converts logical packets (internal/coding) into the
// physical reflectance profiles that move through the scene: a
// sequence of material stripes of constant symbol width, optionally
// surrounded by the carrier object's own surface. It also models
// dynamic tags (the paper's future-work extension (1): E-ink/LCD
// surfaces whose code changes over time).
package tag

import (
	"errors"
	"fmt"

	"passivelight/internal/coding"
	"passivelight/internal/material"
)

// Profile is a one-dimensional reflectance profile along the motion
// axis, in the object's local coordinates (0 at the leading edge of
// the profile). It is piecewise constant.
type Profile struct {
	// edges[i] is the start of segment i; segments[i] applies on
	// [edges[i], edges[i+1]); the profile length is edges[len].
	edges    []float64
	segments []material.Material
	// flatRho caches per-segment reflectances for FlatReflectance.
	flatRho []float64
}

// NewProfile builds a profile from segment lengths and materials.
func NewProfile(lengths []float64, mats []material.Material) (*Profile, error) {
	if len(lengths) != len(mats) {
		return nil, errors.New("tag: lengths and materials must have equal length")
	}
	if len(lengths) == 0 {
		return nil, errors.New("tag: empty profile")
	}
	p := &Profile{edges: make([]float64, 0, len(lengths)+1)}
	pos := 0.0
	p.edges = append(p.edges, 0)
	for i, l := range lengths {
		if l <= 0 {
			return nil, fmt.Errorf("tag: segment %d has non-positive length %.4f", i, l)
		}
		if err := mats[i].Validate(); err != nil {
			return nil, err
		}
		pos += l
		p.edges = append(p.edges, pos)
		p.segments = append(p.segments, mats[i])
	}
	p.flatRho = make([]float64, len(p.segments))
	for i, m := range p.segments {
		p.flatRho[i] = m.Reflectance
	}
	return p, nil
}

// Length returns the total profile length in meters.
func (p *Profile) Length() float64 { return p.edges[len(p.edges)-1] }

// FlatReflectance exposes the piecewise-constant form of the profile:
// segment boundaries (edges[0] = 0, edges[len-1] = Length) and the
// reflectance of each segment, so the channel renderer can look up
// reflectance without per-sample interface dispatch or material
// copies. The returned slices are shared and must not be mutated.
func (p *Profile) FlatReflectance() (edges, rho []float64) {
	return p.edges, p.flatRho
}

// SegmentCount returns the number of piecewise-constant segments.
func (p *Profile) SegmentCount() int { return len(p.segments) }

// MaterialAt returns the material at local position x. Positions
// outside [0, Length) return (zero material, false).
func (p *Profile) MaterialAt(x float64) (material.Material, bool) {
	if x < 0 || x >= p.Length() {
		return material.Material{}, false
	}
	// Binary search over edges.
	lo, hi := 0, len(p.segments)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.edges[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return p.segments[lo], true
}

// ReflectanceAt returns the reflectance at local position x, or the
// supplied fallback for positions outside the profile.
func (p *Profile) ReflectanceAt(x, fallback float64) float64 {
	if m, ok := p.MaterialAt(x); ok {
		return m.Reflectance
	}
	return fallback
}

// Tag is a physical passive packet: a reflectance profile generated
// from symbols at a fixed symbol width.
type Tag struct {
	Packet      coding.Packet
	SymbolWidth float64 // meters per symbol stripe
	HighMat     material.Material
	LowMat      material.Material
	profile     *Profile
}

// Config bundles tag construction options.
type Config struct {
	// SymbolWidth is the stripe width per symbol (m); the paper uses
	// 1.5-7.5 cm indoors and 10 cm on the car roof.
	SymbolWidth float64
	// HighMat/LowMat default to aluminum tape and black napkin.
	HighMat, LowMat *material.Material
	// LeadIn/LeadOut prepend/append stretches of LowMat before and
	// after the coded region so the decoder sees a quiet baseline.
	// Both default to 0.
	LeadIn, LeadOut float64
}

// New builds a Tag for the given packet (preamble + Manchester data
// as material stripes).
func New(p coding.Packet, cfg Config) (*Tag, error) {
	symbols := p.Symbols()
	if len(symbols) == 0 {
		return nil, errors.New("tag: packet has no symbols")
	}
	t, err := NewFromSymbols(symbols, cfg)
	if err != nil {
		return nil, err
	}
	t.Packet = p
	return t, nil
}

// NewFromSymbols builds a tag directly from a symbol sequence,
// bypassing the packet layer. Used for non-Manchester ablations (NRZ
// stripes) and custom patterns.
func NewFromSymbols(symbols []coding.Symbol, cfg Config) (*Tag, error) {
	if cfg.SymbolWidth <= 0 {
		return nil, errors.New("tag: symbol width must be positive")
	}
	if len(symbols) == 0 {
		return nil, errors.New("tag: no symbols")
	}
	high := material.AluminumTape
	if cfg.HighMat != nil {
		high = *cfg.HighMat
	}
	low := material.BlackNapkin
	if cfg.LowMat != nil {
		low = *cfg.LowMat
	}
	var lengths []float64
	var mats []material.Material
	if cfg.LeadIn > 0 {
		lengths = append(lengths, cfg.LeadIn)
		mats = append(mats, low)
	}
	for _, s := range symbols {
		lengths = append(lengths, cfg.SymbolWidth)
		if s == coding.High {
			mats = append(mats, high)
		} else {
			mats = append(mats, low)
		}
	}
	if cfg.LeadOut > 0 {
		lengths = append(lengths, cfg.LeadOut)
		mats = append(mats, low)
	}
	profile, err := NewProfile(lengths, mats)
	if err != nil {
		return nil, err
	}
	return &Tag{
		SymbolWidth: cfg.SymbolWidth,
		HighMat:     high,
		LowMat:      low,
		profile:     profile,
	}, nil
}

// MustNew is New that panics on error, for fixed test/example tags.
func MustNew(p coding.Packet, cfg Config) *Tag {
	t, err := New(p, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Profile returns the tag's reflectance profile.
func (t *Tag) Profile() *Profile { return t.profile }

// Length returns the tag's physical length (m).
func (t *Tag) Length() float64 { return t.profile.Length() }

// SymbolCount returns preamble + data symbols.
func (t *Tag) SymbolCount() int { return len(t.Packet.Symbols()) }

// WithDirt returns a copy of the tag whose stripe materials carry a
// dirt layer of the given coverage; used for distortion experiments.
func (t *Tag) WithDirt(coverage float64) (*Tag, error) {
	high := t.HighMat.WithDirt(coverage)
	low := t.LowMat.WithDirt(coverage)
	return New(t.Packet, Config{
		SymbolWidth: t.SymbolWidth,
		HighMat:     &high,
		LowMat:      &low,
	})
}

// Dynamic is a time-varying tag (future work (1)): an E-ink/LCD
// surface cycling through several packets. At any instant it behaves
// like the Tag active for that time slot.
type Dynamic struct {
	// Frames are the tags cycled through.
	Frames []*Tag
	// FramePeriod is how long each frame is displayed (s).
	FramePeriod float64
}

// NewDynamic validates and builds a dynamic tag. All frames must share
// the same physical length so the carrier geometry is constant.
func NewDynamic(frames []*Tag, framePeriod float64) (*Dynamic, error) {
	if len(frames) == 0 {
		return nil, errors.New("tag: dynamic tag needs at least one frame")
	}
	if framePeriod <= 0 {
		return nil, errors.New("tag: frame period must be positive")
	}
	l := frames[0].Length()
	for i, f := range frames[1:] {
		if diff := f.Length() - l; diff > 1e-9 || diff < -1e-9 {
			return nil, fmt.Errorf("tag: frame %d length %.4f != frame 0 length %.4f", i+1, f.Length(), l)
		}
	}
	return &Dynamic{Frames: frames, FramePeriod: framePeriod}, nil
}

// ActiveAt returns the tag displayed at time t (cycling).
func (d *Dynamic) ActiveAt(t float64) *Tag {
	if t < 0 {
		t = 0
	}
	idx := int(t/d.FramePeriod) % len(d.Frames)
	return d.Frames[idx]
}

// Length returns the (shared) physical length of the frames.
func (d *Dynamic) Length() float64 { return d.Frames[0].Length() }
