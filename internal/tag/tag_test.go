package tag

import (
	"math"
	"testing"
	"testing/quick"

	"passivelight/internal/coding"
	"passivelight/internal/material"
)

func TestNewProfileLookup(t *testing.T) {
	p, err := NewProfile(
		[]float64{0.1, 0.2, 0.1},
		[]material.Material{material.AluminumTape, material.BlackNapkin, material.AluminumTape},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length()-0.4) > 1e-12 {
		t.Fatalf("length %v", p.Length())
	}
	if p.SegmentCount() != 3 {
		t.Fatalf("segments %d", p.SegmentCount())
	}
	cases := []struct {
		x    float64
		want string
	}{
		{0, "aluminum-tape"},
		{0.05, "aluminum-tape"},
		{0.1, "black-napkin"},
		{0.25, "black-napkin"},
		{0.31, "aluminum-tape"},
		{0.399, "aluminum-tape"},
	}
	for _, c := range cases {
		m, ok := p.MaterialAt(c.x)
		if !ok {
			t.Fatalf("x=%v: no material", c.x)
		}
		if m.Name != c.want {
			t.Fatalf("x=%v: got %s, want %s", c.x, m.Name, c.want)
		}
	}
	if _, ok := p.MaterialAt(-0.01); ok {
		t.Fatal("before profile should be empty")
	}
	if _, ok := p.MaterialAt(0.4); ok {
		t.Fatal("at end (exclusive) should be empty")
	}
	if r := p.ReflectanceAt(-1, 0.42); r != 0.42 {
		t.Fatalf("fallback reflectance %v", r)
	}
}

func TestNewProfileErrors(t *testing.T) {
	if _, err := NewProfile(nil, nil); err == nil {
		t.Fatal("empty profile should fail")
	}
	if _, err := NewProfile([]float64{1}, []material.Material{material.Tarmac, material.Tarmac}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := NewProfile([]float64{0}, []material.Material{material.Tarmac}); err == nil {
		t.Fatal("zero-length segment should fail")
	}
	bad := material.Material{Name: "bad", Reflectance: 2}
	if _, err := NewProfile([]float64{1}, []material.Material{bad}); err == nil {
		t.Fatal("invalid material should fail")
	}
}

func TestTagGeometryMatchesSymbols(t *testing.T) {
	pkt := coding.MustPacket("10")
	tg, err := New(pkt, Config{SymbolWidth: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	symbols := pkt.Symbols() // HLHL LHHL
	if got := tg.Length(); math.Abs(got-float64(len(symbols))*0.03) > 1e-12 {
		t.Fatalf("length %v", got)
	}
	if tg.SymbolCount() != len(symbols) {
		t.Fatalf("symbol count %d", tg.SymbolCount())
	}
	for i, s := range symbols {
		x := (float64(i) + 0.5) * 0.03 // center of stripe i
		m, ok := tg.Profile().MaterialAt(x)
		if !ok {
			t.Fatalf("stripe %d: no material", i)
		}
		wantHigh := s == coding.High
		isHigh := m.Reflectance > 0.5
		if wantHigh != isHigh {
			t.Fatalf("stripe %d: symbol %v but material %s", i, s, m.Name)
		}
	}
}

func TestTagLeadInOut(t *testing.T) {
	pkt := coding.MustPacket("0")
	tg, err := New(pkt, Config{SymbolWidth: 0.02, LeadIn: 0.05, LeadOut: 0.07})
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 0.05 + 6*0.02 + 0.07
	if math.Abs(tg.Length()-wantLen) > 1e-12 {
		t.Fatalf("length %v, want %v", tg.Length(), wantLen)
	}
	// Lead-in is LOW material.
	m, ok := tg.Profile().MaterialAt(0.01)
	if !ok || m.Reflectance > 0.5 {
		t.Fatalf("lead-in material %v", m.Name)
	}
	// First symbol (preamble H) follows the lead-in.
	m, ok = tg.Profile().MaterialAt(0.06)
	if !ok || m.Reflectance < 0.5 {
		t.Fatalf("first stripe after lead-in should be HIGH, got %v", m.Name)
	}
}

func TestTagCustomMaterials(t *testing.T) {
	hi := material.MirrorFilm
	lo := material.DarkCloth
	tg, err := New(coding.MustPacket("1"), Config{SymbolWidth: 0.01, HighMat: &hi, LowMat: &lo})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := tg.Profile().MaterialAt(0.005) // first preamble H
	if m.Name != "mirror-film" {
		t.Fatalf("high material %s", m.Name)
	}
}

func TestTagErrors(t *testing.T) {
	if _, err := New(coding.MustPacket("1"), Config{}); err == nil {
		t.Fatal("zero symbol width should fail")
	}
	if _, err := NewFromSymbols(nil, Config{SymbolWidth: 0.01}); err == nil {
		t.Fatal("empty symbols should fail")
	}
}

func TestNewFromSymbolsNRZ(t *testing.T) {
	symbols := append(append([]coding.Symbol{}, coding.Preamble...),
		coding.NRZEncode([]coding.Bit{1, 1, 0})...)
	tg, err := NewFromSymbols(symbols, Config{SymbolWidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tg.Length()-float64(len(symbols))*0.02) > 1e-12 {
		t.Fatalf("length %v", tg.Length())
	}
}

func TestWithDirtKeepsGeometry(t *testing.T) {
	tg, err := New(coding.MustPacket("01"), Config{SymbolWidth: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := tg.WithDirt(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Length() != tg.Length() {
		t.Fatal("dirt changed tag length")
	}
	cm, _ := tg.Profile().MaterialAt(0.015)
	dm, _ := dirty.Profile().MaterialAt(0.015)
	if dm.Reflectance >= cm.Reflectance {
		t.Fatalf("dirty HIGH stripe not darker: %.2f vs %.2f", dm.Reflectance, cm.Reflectance)
	}
}

func TestDynamicTagCycles(t *testing.T) {
	a := MustNew(coding.MustPacket("00"), Config{SymbolWidth: 0.02})
	b := MustNew(coding.MustPacket("11"), Config{SymbolWidth: 0.02})
	d, err := NewDynamic([]*Tag{a, b}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d.ActiveAt(0.5) != a {
		t.Fatal("frame 0 should be active at t=0.5")
	}
	if d.ActiveAt(1.5) != b {
		t.Fatal("frame 1 should be active at t=1.5")
	}
	if d.ActiveAt(2.5) != a {
		t.Fatal("cycling should return to frame 0")
	}
	if d.ActiveAt(-1) != a {
		t.Fatal("negative time clamps to frame 0")
	}
	if d.Length() != a.Length() {
		t.Fatal("dynamic length mismatch")
	}
}

func TestDynamicTagValidation(t *testing.T) {
	a := MustNew(coding.MustPacket("00"), Config{SymbolWidth: 0.02})
	c := MustNew(coding.MustPacket("0"), Config{SymbolWidth: 0.02}) // shorter
	if _, err := NewDynamic([]*Tag{a, c}, 1.0); err == nil {
		t.Fatal("mismatched frame lengths should fail")
	}
	if _, err := NewDynamic(nil, 1.0); err == nil {
		t.Fatal("no frames should fail")
	}
	if _, err := NewDynamic([]*Tag{a}, 0); err == nil {
		t.Fatal("zero period should fail")
	}
}

func TestProfileLookupProperty(t *testing.T) {
	tg := MustNew(coding.MustPacket("0110"), Config{SymbolWidth: 0.025})
	f := func(frac float64) bool {
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			return true
		}
		frac = math.Mod(math.Abs(frac), 1)
		x := frac * tg.Length()
		if x >= tg.Length() {
			return true
		}
		m, ok := tg.Profile().MaterialAt(x)
		// Every in-range position maps to one of the two stripe
		// materials.
		return ok && (m.Name == tg.HighMat.Name || m.Name == tg.LowMat.Name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
