// Package frontend models the receiver electronics of the evaluation
// board (paper Fig. 3): the OPT101 photodiode with selectable gain,
// an LED operated in photovoltaic mode as a receiver (RX-LED), the
// physical FoV-reducing cap of Sec. 5.2, the receiver's finite
// response time, and the MCP3008-style 10-bit ADC sampling at a
// configurable rate (2 kS/s in the outdoor experiments).
//
// The Fig. 11 device table is encoded exactly:
//
//	receiver   saturation   sensitivity (normalized)
//	PD (G1)      450 lux       1
//	PD (G2)     1200 lux       0.45
//	PD (G3)     5000 lux       0.089
//	LED       35000 lux       0.013
//
// Saturation and sensitivity are two sides of the same front-end
// scaling: the ADC full scale corresponds to an input level of
// FullScaleCounts / (sensitivity * CountsPerLux) lux, which lands on
// the table's saturation points for CountsPerLux ~= 2.2.
package frontend

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// GainLevel selects the OPT101 gain control setting.
type GainLevel int

// Gain levels from the paper's Fig. 11.
const (
	G1 GainLevel = iota + 1 // high sensitivity, saturates at 450 lux
	G2                      // medium: 1200 lux
	G3                      // low: 5000 lux
)

// String implements fmt.Stringer.
func (g GainLevel) String() string {
	switch g {
	case G1:
		return "G1"
	case G2:
		return "G2"
	case G3:
		return "G3"
	default:
		return fmt.Sprintf("GainLevel(%d)", int(g))
	}
}

// Receiver is an optical receiver model.
type Receiver struct {
	// Name for traces ("pd-g1", "rx-led", ...).
	Name string
	// Sensitivity relative to PD@G1 (Fig. 11 right column).
	Sensitivity float64
	// SaturationLux is the incident level at which the output rails
	// (Fig. 11 left column).
	SaturationLux float64
	// FoVHalfAngleDeg is the optical acceptance half-angle. The
	// RX-LED's narrow FoV and the PD cap enter the channel through
	// this value.
	FoVHalfAngleDeg float64
	// ResponseHz is the receiver's -3 dB bandwidth; it bounds the
	// maximal supported object speed (Sec. 6, future work (3)).
	ResponseHz float64
	// DarkNoiseCounts is the RMS electronic noise at the ADC input in
	// counts (post-sensitivity, so low-sensitivity receivers lose
	// weak signals into it).
	DarkNoiseCounts float64
}

// Standard receivers.

// PD returns the OPT101 photodiode model at the given gain level.
func PD(g GainLevel) Receiver {
	r := Receiver{Name: "pd-" + g.String(), FoVHalfAngleDeg: 40, ResponseHz: 10000, DarkNoiseCounts: 0.8}
	switch g {
	case G1:
		r.Sensitivity, r.SaturationLux = 1.0, 450
	case G2:
		r.Sensitivity, r.SaturationLux = 0.45, 1200
	case G3:
		r.Sensitivity, r.SaturationLux = 0.089, 5000
	default:
		r.Sensitivity, r.SaturationLux = 1.0, 450
	}
	return r
}

// RXLED returns the LED-as-receiver model: photovoltaic mode, narrow
// FoV and optical bandwidth, low sensitivity, high saturation.
func RXLED() Receiver {
	return Receiver{
		Name:            "rx-led",
		Sensitivity:     0.013,
		SaturationLux:   35000,
		FoVHalfAngleDeg: 4,
		ResponseHz:      4000,
		DarkNoiseCounts: 0.6,
	}
}

// WithCap returns the receiver with the paper's physical cap
// (1.2x1.2x2.8 cm) mounted: the FoV narrows to ~10 degrees and the
// collected light drops (modeled as a sensitivity penalty), which is
// the Fig. 16(b) configuration.
func (r Receiver) WithCap() Receiver {
	out := r
	out.Name = r.Name + "+cap"
	out.FoVHalfAngleDeg = 10
	out.Sensitivity = r.Sensitivity * 0.6
	return out
}

// ByName resolves a receiver device from its canonical name
// ("pd-G1", "pd-G2+cap", "rx-led"; case-insensitive, and the legacy
// spellings "pd-g2-cap" / "led" are accepted). It is the registry the
// declarative scenario layer uses, so a spec can select hardware as
// data.
func ByName(name string) (Receiver, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	cap := false
	for _, suffix := range []string{"+cap", "-cap"} {
		if strings.HasSuffix(n, suffix) {
			cap = true
			n = strings.TrimSuffix(n, suffix)
		}
	}
	var r Receiver
	switch n {
	case "pd-g1", "pd1":
		r = PD(G1)
	case "pd-g2", "pd2":
		r = PD(G2)
	case "pd-g3", "pd3":
		r = PD(G3)
	case "rx-led", "led":
		r = RXLED()
	default:
		return Receiver{}, fmt.Errorf("frontend: unknown receiver %q (want pd-g1 | pd-g2 | pd-g3 | rx-led, optionally +cap)", name)
	}
	if cap {
		r = r.WithCap()
	}
	return r, nil
}

// DeviceNames lists the canonical receiver names ByName resolves,
// for -list style help output.
func DeviceNames() []string {
	return []string{"pd-G1", "pd-G2", "pd-G2+cap", "pd-G3", "rx-led"}
}

// Validate checks the model parameters.
func (r Receiver) Validate() error {
	if r.Sensitivity <= 0 {
		return errors.New("frontend: sensitivity must be positive")
	}
	if r.SaturationLux <= 0 {
		return errors.New("frontend: saturation must be positive")
	}
	if r.FoVHalfAngleDeg <= 0 || r.FoVHalfAngleDeg >= 90 {
		return errors.New("frontend: FoV half-angle must be in (0, 90)")
	}
	return nil
}

// ADC models the MCP3008: 10-bit successive approximation.
type ADC struct {
	// Bits of resolution (default 10).
	Bits int
	// FullScaleCounts derived from Bits.
}

// FullScale returns the maximum output code.
func (a ADC) FullScale() float64 {
	bits := a.Bits
	if bits <= 0 {
		bits = 10
	}
	return float64((int(1) << uint(bits)) - 1)
}

// CountsPerLux is the overall conversion gain from incident lux
// (times sensitivity) to ADC counts, calibrated so each receiver's
// saturation point from Fig. 11 lands at the ADC full scale:
// 1023 counts / (450 lux * sensitivity 1.0) ~= 2.27 for the PD at G1.
const CountsPerLux = 1023.0 / 470.0

// Chain is the complete analog front end + digitizer.
type Chain struct {
	Receiver Receiver
	ADC      ADC
	// Fs is the sampling rate in Hz (2000 in the outdoor runs).
	Fs float64
	// Seed drives the electronic-noise PRNG.
	Seed int64
	// DisableNoise turns off dark noise (for ideal-channel tests).
	DisableNoise bool
}

// NewChain builds a chain with the standard ADC.
func NewChain(r Receiver, fs float64, seed int64) (*Chain, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if fs <= 0 {
		return nil, errors.New("frontend: sampling rate must be positive")
	}
	return &Chain{Receiver: r, ADC: ADC{Bits: 10}, Fs: fs, Seed: seed}, nil
}

// Digitize converts an incident-lux series (already sampled at Fs)
// into ADC counts: response-time low-pass, sensitivity scaling,
// electronic noise, saturation clipping, quantization.
func (c *Chain) Digitize(incidentLux []float64) []float64 {
	out := make([]float64, len(incidentLux))
	rng := rand.New(rand.NewSource(c.Seed))
	fullScale := c.ADC.FullScale()
	// Response-time low-pass (first order RC at the receiver's -3dB
	// point). A 2 kS/s ADC behind a 4-10 kHz receiver barely filters,
	// but slow receivers attenuate fast packets (max-speed study).
	alpha := 1.0
	if c.Receiver.ResponseHz > 0 {
		rc := 1 / (2 * math.Pi * c.Receiver.ResponseHz)
		dt := 1 / c.Fs
		alpha = dt / (rc + dt)
	}
	state := 0.0
	init := false
	satCounts := c.Receiver.SaturationLux * c.Receiver.Sensitivity * CountsPerLux
	if satCounts > fullScale {
		satCounts = fullScale
	}
	for i, lux := range incidentLux {
		if !init {
			state = lux
			init = true
		} else {
			state += alpha * (lux - state)
		}
		counts := state * c.Receiver.Sensitivity * CountsPerLux
		if !c.DisableNoise && c.Receiver.DarkNoiseCounts > 0 {
			counts += rng.NormFloat64() * c.Receiver.DarkNoiseCounts
		}
		if counts < 0 {
			counts = 0
		}
		if counts > satCounts {
			counts = satCounts
		}
		out[i] = math.Round(counts)
	}
	return out
}

// Saturated reports whether an ambient level of lux would rail the
// receiver (within 2% of its saturation input).
func (r Receiver) Saturated(lux float64) bool {
	return lux >= 0.98*r.SaturationLux
}

// ErrSaturated means every candidate receiver rails at the given
// ambient level; test with errors.Is.
var ErrSaturated = errors.New("frontend: all receivers saturate")

// SelectReceiver implements the paper's dual-receiver policy
// (Sec. 4.4): given the ambient noise floor, prefer the most
// sensitive receiver that does not saturate; candidates are tried in
// order. With no candidates, the four Fig. 11 devices are used. When
// every candidate saturates the error wraps ErrSaturated.
func SelectReceiver(noiseFloorLux float64, candidates ...Receiver) (Receiver, error) {
	if len(candidates) == 0 {
		candidates = []Receiver{PD(G1), PD(G2), PD(G3), RXLED()}
	}
	best := Receiver{}
	found := false
	for _, c := range candidates {
		if c.Saturated(noiseFloorLux) {
			continue
		}
		if !found || c.Sensitivity > best.Sensitivity {
			best, found = c, true
		}
	}
	if !found {
		return Receiver{}, fmt.Errorf("%w at %.0f lux", ErrSaturated, noiseFloorLux)
	}
	return best, nil
}
