package frontend

import (
	"errors"
	"math"
	"testing"
)

func TestFig11Table(t *testing.T) {
	// The device table from the paper's Fig. 11 must be encoded
	// exactly.
	cases := []struct {
		dev  Receiver
		sat  float64
		sens float64
	}{
		{PD(G1), 450, 1.0},
		{PD(G2), 1200, 0.45},
		{PD(G3), 5000, 0.089},
		{RXLED(), 35000, 0.013},
	}
	for _, c := range cases {
		if c.dev.SaturationLux != c.sat {
			t.Errorf("%s saturation %v, want %v", c.dev.Name, c.dev.SaturationLux, c.sat)
		}
		if c.dev.Sensitivity != c.sens {
			t.Errorf("%s sensitivity %v, want %v", c.dev.Name, c.dev.Sensitivity, c.sens)
		}
		if err := c.dev.Validate(); err != nil {
			t.Errorf("%s: %v", c.dev.Name, err)
		}
	}
}

func TestSaturationTimesSensitivityNearConstant(t *testing.T) {
	// The Fig. 11 rows satisfy sat*sens ~ 450-540 lux: they are one
	// front-end scaling seen through different gains.
	for _, dev := range []Receiver{PD(G1), PD(G2), PD(G3), RXLED()} {
		prod := dev.SaturationLux * dev.Sensitivity
		if prod < 440 || prod > 560 {
			t.Errorf("%s: sat*sens = %.1f outside [440, 560]", dev.Name, prod)
		}
	}
}

func TestWithCapNarrowsFoV(t *testing.T) {
	bare := PD(G2)
	capped := bare.WithCap()
	if capped.FoVHalfAngleDeg >= bare.FoVHalfAngleDeg {
		t.Fatal("cap should narrow the FoV")
	}
	if capped.Sensitivity >= bare.Sensitivity {
		t.Fatal("cap should cost sensitivity")
	}
	if capped.Name != "pd-G2+cap" {
		t.Fatalf("name %q", capped.Name)
	}
}

func TestChainQuantizesToCounts(t *testing.T) {
	fe, err := NewChain(PD(G1), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fe.DisableNoise = true
	out := fe.Digitize([]float64{100, 100, 100})
	for _, v := range out {
		if v != math.Trunc(v) {
			t.Fatalf("non-integer count %v", v)
		}
		if v < 0 || v > 1023 {
			t.Fatalf("count %v outside 10-bit range", v)
		}
	}
}

func TestChainSaturationClips(t *testing.T) {
	fe, err := NewChain(PD(G1), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fe.DisableNoise = true
	low := fe.Digitize([]float64{400})[0]
	atSat := fe.Digitize([]float64{450})[0]
	beyond := fe.Digitize([]float64{2000})[0]
	if low >= atSat {
		t.Fatalf("below saturation should grow: %v vs %v", low, atSat)
	}
	if beyond > atSat {
		t.Fatalf("beyond saturation should clip: %v vs %v", beyond, atSat)
	}
}

func TestChainSensitivityScalesOutput(t *testing.T) {
	g1, err := NewChain(PD(G1), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1.DisableNoise = true
	led, err := NewChain(RXLED(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	led.DisableNoise = true
	aG1 := g1.Digitize([]float64{200})[0]
	aLED := led.Digitize([]float64{200})[0]
	ratio := aLED / aG1
	if math.Abs(ratio-0.013) > 0.01 {
		t.Fatalf("output ratio %v, want ~0.013", ratio)
	}
}

func TestChainResponseTimeSmoothsSteps(t *testing.T) {
	slow := PD(G1)
	slow.ResponseHz = 20 // artificially slow receiver
	fe, err := NewChain(slow, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fe.DisableNoise = true
	in := make([]float64, 100)
	for i := 50; i < 100; i++ {
		in[i] = 300
	}
	out := fe.Digitize(in)
	// Immediately after the step the slow receiver lags.
	if out[51] >= out[99]*0.5 {
		t.Fatalf("slow receiver reacted instantly: %v vs %v", out[51], out[99])
	}
	if out[99] < out[51] {
		t.Fatal("output should keep rising toward the step level")
	}
}

func TestChainNoiseDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []float64 {
		fe, err := NewChain(PD(G1), 1000, seed)
		if err != nil {
			t.Fatal(err)
		}
		return fe.Digitize([]float64{100, 100, 100, 100})
	}
	a := mk(7)
	b := mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce identical noise")
		}
	}
}

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(Receiver{}, 1000, 1); err == nil {
		t.Fatal("invalid receiver should fail")
	}
	if _, err := NewChain(PD(G1), 0, 1); err == nil {
		t.Fatal("zero sample rate should fail")
	}
}

func TestSelectReceiverPolicy(t *testing.T) {
	cases := []struct {
		lux  float64
		want string
	}{
		{100, "pd-G1"},
		{430, "pd-G1"},
		{450, "pd-G2"}, // G1 saturates within 2% of 450
		{1200, "pd-G3"},
		{4800, "pd-G3"},
		{5000, "rx-led"},
		{30000, "rx-led"},
	}
	for _, c := range cases {
		got, err := SelectReceiver(c.lux)
		if err != nil {
			t.Fatalf("%v lux: %v", c.lux, err)
		}
		if got.Name != c.want {
			t.Errorf("%v lux -> %s, want %s", c.lux, got.Name, c.want)
		}
	}
	if _, err := SelectReceiver(40000); err == nil {
		t.Fatal("40 klux should saturate everything")
	}
	// Explicit candidate list is honored.
	got, err := SelectReceiver(100, RXLED())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rx-led" {
		t.Fatalf("candidate list ignored: %s", got.Name)
	}
}

func TestGainLevelString(t *testing.T) {
	if G1.String() != "G1" || G2.String() != "G2" || G3.String() != "G3" {
		t.Fatal("gain level strings")
	}
	if GainLevel(9).String() == "" {
		t.Fatal("unknown gain level should still render")
	}
}

func TestADCFullScale(t *testing.T) {
	if (ADC{Bits: 10}).FullScale() != 1023 {
		t.Fatal("10-bit full scale")
	}
	if (ADC{}).FullScale() != 1023 {
		t.Fatal("default full scale should be 10-bit")
	}
	if (ADC{Bits: 8}).FullScale() != 255 {
		t.Fatal("8-bit full scale")
	}
}

func TestSelectReceiverAllSaturated(t *testing.T) {
	// Brighter than every device's saturation point: the error must
	// unwrap to the ErrSaturated sentinel.
	_, err := SelectReceiver(1e6)
	if err == nil {
		t.Fatal("1M lux should saturate every default device")
	}
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("error %v does not unwrap to ErrSaturated", err)
	}
	// Same with an explicit candidate list.
	_, err = SelectReceiver(500, PD(G1))
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated explicit candidate: %v", err)
	}
}

func TestSelectReceiverEmptyCandidates(t *testing.T) {
	// No candidates selects the four Fig. 11 devices; in the dark the
	// most sensitive (PD at G1) must win.
	dev, err := SelectReceiver(10)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "pd-G1" {
		t.Fatalf("10 lux with default devices -> %s, want pd-G1", dev.Name)
	}
	// At 2000 lux G1/G2 saturate and G3 is the most sensitive left.
	dev, err = SelectReceiver(2000)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "pd-G3" {
		t.Fatalf("2000 lux -> %s, want pd-G3", dev.Name)
	}
}
