// Package energy models the sustainability claims of the paper's
// introduction: a single-photodiode receiver consumes ~1.5 mW (the
// OPT101 measured in their lab) against upwards of 1000 mW for a
// camera, so "a small solar panel — the size of a credit card — could
// harvest enough energy from the surrounding lights for our system to
// work autonomously".
package energy

import (
	"errors"
	"fmt"
)

// Receiver power draws (milliwatts).
const (
	// PhotodiodeMW is the OPT101 consumption the paper measured.
	PhotodiodeMW = 1.5
	// RXLEDMW: an LED in photovoltaic mode consumes essentially
	// nothing itself; budget the bias/readout path.
	RXLEDMW = 0.3
	// ADCMW is an MCP3008-class ADC at a 2 kS/s duty.
	ADCMW = 1.0
	// MCUSleepyMW is a duty-cycled microcontroller doing threshold
	// decoding.
	MCUSleepyMW = 3.0
	// CameraMW is the paper's camera comparison point ("upwards of
	// 1000 mW").
	CameraMW = 1000.0
)

// Budget is a receiver power budget.
type Budget struct {
	Name  string
	Parts map[string]float64 // mW per component
}

// TotalMW sums the budget.
func (b Budget) TotalMW() float64 {
	var sum float64
	for _, mw := range b.Parts {
		sum += mw
	}
	return sum
}

// TinyBoxBudget is the paper's "tiny box": photodiode + RX-LED + ADC
// + duty-cycled MCU.
func TinyBoxBudget() Budget {
	return Budget{
		Name: "tiny-box",
		Parts: map[string]float64{
			"photodiode": PhotodiodeMW,
			"rx-led":     RXLEDMW,
			"adc":        ADCMW,
			"mcu":        MCUSleepyMW,
		},
	}
}

// CameraBudget is the camera-based alternative.
func CameraBudget() Budget {
	return Budget{
		Name:  "camera",
		Parts: map[string]float64{"camera": CameraMW},
	}
}

// SolarPanel models a small harvesting panel.
type SolarPanel struct {
	// AreaCM2 is the panel area in square centimeters (a credit card
	// is ~46 cm^2).
	AreaCM2 float64
	// Efficiency of the cell in (0, 1]; ~0.18 for commodity silicon.
	Efficiency float64
}

// CreditCardPanel returns the paper's "size of a credit card" panel.
func CreditCardPanel() SolarPanel {
	return SolarPanel{AreaCM2: 46, Efficiency: 0.18}
}

// HarvestMW returns the electrical power harvested under the given
// illuminance. Illuminance is converted to irradiance via luminous
// efficacy: daylight carries ~1 W/m^2 per 120 lux; LED/fluorescent
// light is more "efficient" per watt (~250 lux per W/m^2), so a lux
// of indoor light carries less harvestable radiant power.
func (p SolarPanel) HarvestMW(lux float64, daylight bool) (float64, error) {
	if p.AreaCM2 <= 0 || p.Efficiency <= 0 || p.Efficiency > 1 {
		return 0, errors.New("energy: invalid panel")
	}
	if lux < 0 {
		return 0, errors.New("energy: negative illuminance")
	}
	luxPerWm2 := 120.0
	if !daylight {
		luxPerWm2 = 250.0
	}
	irradianceWm2 := lux / luxPerWm2
	areaM2 := p.AreaCM2 / 1e4
	return irradianceWm2 * areaM2 * p.Efficiency * 1000, nil
}

// SelfSustaining reports whether the panel covers the budget at the
// given ambient level, and the harvest margin (harvest/budget).
func SelfSustaining(panel SolarPanel, budget Budget, lux float64, daylight bool) (bool, float64, error) {
	harvest, err := panel.HarvestMW(lux, daylight)
	if err != nil {
		return false, 0, err
	}
	need := budget.TotalMW()
	if need <= 0 {
		return false, 0, errors.New("energy: empty budget")
	}
	margin := harvest / need
	return margin >= 1, margin, nil
}

// BreakEvenLux returns the ambient level at which the panel exactly
// covers the budget.
func BreakEvenLux(panel SolarPanel, budget Budget, daylight bool) (float64, error) {
	// Harvest is linear in lux: harvest(lux) = k * lux.
	k, err := panel.HarvestMW(1, daylight)
	if err != nil {
		return 0, err
	}
	if k <= 0 {
		return 0, errors.New("energy: panel harvests nothing")
	}
	return budget.TotalMW() / k, nil
}

// CompareReport renders the paper's energy argument as rows.
func CompareReport(lux float64, daylight bool) ([]string, error) {
	panel := CreditCardPanel()
	var rows []string
	for _, budget := range []Budget{TinyBoxBudget(), CameraBudget()} {
		ok, margin, err := SelfSustaining(panel, budget, lux, daylight)
		if err != nil {
			return nil, err
		}
		breakeven, err := BreakEvenLux(panel, budget, daylight)
		if err != nil {
			return nil, err
		}
		rows = append(rows, fmt.Sprintf(
			"%-8s draw=%7.1f mW  credit-card harvest margin at %6.0f lux: %5.2fx (self-sustaining=%v, break-even %.0f lux)",
			budget.Name, budget.TotalMW(), lux, margin, ok, breakeven))
	}
	ratio := CameraBudget().TotalMW() / TinyBoxBudget().TotalMW()
	rows = append(rows, fmt.Sprintf("camera / tiny-box consumption ratio: %.0fx (paper: 'orders of magnitude')", ratio))
	return rows, nil
}
