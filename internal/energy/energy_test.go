package energy

import (
	"math"
	"testing"
)

func TestBudgets(t *testing.T) {
	tiny := TinyBoxBudget()
	if tiny.TotalMW() <= 0 || tiny.TotalMW() > 10 {
		t.Fatalf("tiny box draw %.1f mW", tiny.TotalMW())
	}
	cam := CameraBudget()
	if cam.TotalMW() != CameraMW {
		t.Fatalf("camera draw %.1f", cam.TotalMW())
	}
	// The paper's "orders of magnitude" claim.
	if cam.TotalMW()/tiny.TotalMW() < 100 {
		t.Fatal("camera/tiny-box ratio below two orders of magnitude")
	}
}

func TestHarvestScalesLinearly(t *testing.T) {
	p := CreditCardPanel()
	h1, err := p.HarvestMW(1000, true)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.HarvestMW(2000, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h2-2*h1) > 1e-9 {
		t.Fatalf("harvest not linear: %v vs %v", h1, h2)
	}
	// Indoor spectra are less favorable per lux.
	indoor, err := p.HarvestMW(1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if indoor >= h1 {
		t.Fatal("indoor lux should harvest less than daylight lux")
	}
}

func TestHarvestValidation(t *testing.T) {
	bad := SolarPanel{AreaCM2: 0, Efficiency: 0.18}
	if _, err := bad.HarvestMW(100, true); err == nil {
		t.Fatal("zero area should fail")
	}
	bad = SolarPanel{AreaCM2: 46, Efficiency: 1.5}
	if _, err := bad.HarvestMW(100, true); err == nil {
		t.Fatal("efficiency > 1 should fail")
	}
	p := CreditCardPanel()
	if _, err := p.HarvestMW(-1, true); err == nil {
		t.Fatal("negative lux should fail")
	}
}

func TestSelfSustainingCrossover(t *testing.T) {
	panel := CreditCardPanel()
	tiny := TinyBoxBudget()
	breakeven, err := BreakEvenLux(panel, tiny, true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's outdoor noise floors (3700-6200 lux) must sustain
	// the tiny box; a dim 100 lux scene must not.
	ok, margin, err := SelfSustaining(panel, tiny, 6200, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || margin <= 1 {
		t.Fatalf("6200 lux: ok=%v margin=%v", ok, margin)
	}
	ok, _, err = SelfSustaining(panel, tiny, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("100 lux should not sustain the receiver")
	}
	// Break-even sits between those operating points.
	if breakeven <= 100 || breakeven >= 6200 {
		t.Fatalf("break-even %.0f lux outside (100, 6200)", breakeven)
	}
	// Exactly at break-even the margin is 1.
	_, margin, err = SelfSustaining(panel, tiny, breakeven, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(margin-1) > 1e-9 {
		t.Fatalf("margin at break-even %v", margin)
	}
}

func TestCameraNotSustainable(t *testing.T) {
	ok, _, err := SelfSustaining(CreditCardPanel(), CameraBudget(), 10000, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a credit-card panel cannot power a camera")
	}
}

func TestCompareReport(t *testing.T) {
	rows, err := CompareReport(6200, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
}
