package passivelight

import (
	"testing"
)

func TestQuickstartEndToEnd(t *testing.T) {
	bench := IndoorBench{
		Height:      0.20,
		SymbolWidth: 0.03,
		Speed:       0.08,
		Payload:     "10",
		Seed:        42,
	}
	link, packet, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEndToEnd(link, packet, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("decoded %s", res.Decode.SymbolString())
	}
	if res.Decode.Packet.BitString() != "10" {
		t.Fatalf("payload %q", res.Decode.Packet.BitString())
	}
}

func TestFacadePacketHelpers(t *testing.T) {
	p, err := NewPacket("0110")
	if err != nil {
		t.Fatal(err)
	}
	if p.SymbolString() != "HLHL.HLLHLHHL" {
		t.Fatalf("symbol string %q", p.SymbolString())
	}
	if MustPacket("1").BitString() != "1" {
		t.Fatal("MustPacket")
	}
	if _, err := NewPacket("abc"); err == nil {
		t.Fatal("invalid payload should fail")
	}
}

func TestFacadeCodebook(t *testing.T) {
	cb, err := NewCodebook(6, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 4 {
		t.Fatalf("codebook size %d", cb.Len())
	}
	w, err := cb.Encode(2)
	if err != nil {
		t.Fatal(err)
	}
	idx, dist := cb.Decode(w)
	if idx != 2 || dist != 0 {
		t.Fatalf("decode %d (dist %d)", idx, dist)
	}
}

func TestFacadeReceiverSelection(t *testing.T) {
	dev, err := SelectReceiver(6200)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name != "rx-led" {
		t.Fatalf("6200 lux -> %s", dev.Name)
	}
	pd := PDReceiver(GainG1)
	if pd.SaturationLux != 450 {
		t.Fatalf("pd-g1 saturation %v", pd.SaturationLux)
	}
	led := RXLEDReceiver()
	if led.SaturationLux != 35000 {
		t.Fatalf("rx-led saturation %v", led.SaturationLux)
	}
}

func TestFacadeOutdoorCarPass(t *testing.T) {
	pass := OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           5,
	}
	link, packet, err := pass.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	two, err := DecodeCarPass(tr, DecodeOptions{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if two.Decode.Packet.BitString() != packet.BitString() {
		t.Fatalf("decoded %q, want %q", two.Decode.Packet.BitString(), packet.BitString())
	}
}

func TestFacadeStreaming(t *testing.T) {
	bench := IndoorBench{
		Height:      0.20,
		SymbolWidth: 0.03,
		Speed:       0.08,
		Payload:     "10",
		Seed:        42,
	}
	link, packet, err := bench.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewStreamDecoder(StreamConfig{Fs: tr.Fs, Decode: DecodeOptions{ExpectedSymbols: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var dets []StreamDetection
	for chunk := range tr.Chunks(500) {
		dets = append(dets, dec.Feed(chunk)...)
	}
	dets = append(dets, dec.Flush()...)
	var got []string
	for _, d := range dets {
		if d.Err == nil {
			got = append(got, d.BitString())
		}
	}
	if len(got) != 1 || got[0] != packet.BitString() {
		t.Fatalf("streamed decode %v, want [%s]", got, packet.BitString())
	}

	eng, err := NewStreamEngine(StreamEngineConfig{Session: StreamConfig{Fs: tr.Fs, Decode: DecodeOptions{ExpectedSymbols: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Feed(1, 0, tr.Samples); err != nil {
		t.Fatal(err)
	}
	if err := eng.FlushSession(1); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Sessions != 1 || st.SamplesIn != int64(tr.Len()) || st.Detections != 1 {
		t.Fatalf("engine stats %+v", st)
	}
	det := <-eng.Detections()
	if det.Err != nil || det.BitString() != packet.BitString() {
		t.Fatalf("engine detection %q (err %v)", det.BitString(), det.Err)
	}
}

func TestFacadeCollisionAnalysis(t *testing.T) {
	// Re-decode a trace through the facade collision API.
	pass := OutdoorCarPass{Payload: "00", NoiseFloorLux: 6200, ReceiverHeight: 0.75, Seed: 5}
	link, _, err := pass.Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeCollision(tr, CollisionOptions{MaxFreq: 100})
	if err != nil {
		t.Fatal(err)
	}
	// A single packet: one dominant symbol-rate region.
	if rep.DominantFreq <= 0 {
		t.Fatal("no dominant frequency found")
	}
}
