package passivelight

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"passivelight/internal/rxnet"
)

// synthPacketStream synthesizes one session's observation (quiet,
// packet, quiet) for network streaming tests.
func synthPacketStream(payload string, fs float64, seed int64) []float64 {
	const high, low, baseline = 90.0, 12.0, 10.0
	rng := rand.New(rand.NewSource(seed))
	gap := int(2.0 * fs)
	perSymbol := int(0.2 * fs)
	var out []float64
	quiet := func(n int) {
		for i := 0; i < n; i++ {
			out = append(out, baseline+0.3*rng.NormFloat64())
		}
	}
	quiet(gap)
	for _, s := range MustPacket(payload).Symbols() {
		level := low
		if s == High {
			level = high
		}
		for i := 0; i < perSymbol; i++ {
			out = append(out, level+0.3*rng.NormFloat64())
		}
	}
	quiet(gap)
	return out
}

// testTrace renders the standard indoor '10' pass.
func testTrace(t *testing.T) (*Trace, Packet) {
	t.Helper()
	link, packet, err := (IndoorBench{
		Height:      0.20,
		SymbolWidth: 0.03,
		Speed:       0.08,
		Payload:     "10",
		Seed:        42,
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := link.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	return tr, packet
}

// TestPipelineBatchEquivalence is the pipeline-vs-legacy contract: a
// Pipeline over a recorded Trace source in batch-equivalent mode must
// produce detections bit-identical to the batch Decode of the same
// trace — same payload bits, same symbol string.
func TestPipelineBatchEquivalence(t *testing.T) {
	tr, _ := testTrace(t)
	legacy, err := Decode(tr, DecodeOptions{ExpectedSymbols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.ParseErr != nil {
		t.Fatal(legacy.ParseErr)
	}

	pipe, err := NewPipeline(NewTraceSource(tr, 512), Threshold(),
		WithExpectedSymbols(8),
		WithPreRoll(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("pipeline produced %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	if ev.BitString() != legacy.Packet.BitString() {
		t.Fatalf("pipeline bits %q != batch bits %q", ev.BitString(), legacy.Packet.BitString())
	}
	if ev.Symbols != legacy.SymbolString() {
		t.Fatalf("pipeline symbols %q != batch symbols %q", ev.Symbols, legacy.SymbolString())
	}
	if ev.CodeIndex != -1 {
		t.Fatalf("no codebook configured but CodeIndex=%d", ev.CodeIndex)
	}
}

// TestPipelineOnlineMode checks the default bounded-memory streaming
// configuration decodes the same packet.
func TestPipelineOnlineMode(t *testing.T) {
	tr, packet := testTrace(t)
	pipe, err := NewPipeline(NewTraceSource(tr, 500), Threshold(), WithExpectedSymbols(8))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range events {
		if ev.Err == nil {
			got = append(got, ev.BitString())
		}
	}
	if len(got) != 1 || got[0] != packet.BitString() {
		t.Fatalf("online pipeline decoded %v, want [%s]", got, packet.BitString())
	}
}

// TestPipelineTwoPhaseAutoSelect runs the outdoor path: simulated car
// pass, receiver picked by the Sec. 4.4 policy, two-phase decode.
func TestPipelineTwoPhaseAutoSelect(t *testing.T) {
	src := NewCarPassSource(OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           5,
	})
	pipe, err := NewPipeline(src, TwoPhase(),
		WithExpectedSymbols(8),
		WithPreRoll(-1),
		WithReceiverAutoSelect(),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if src.Receiver() != "rx-led" {
		t.Fatalf("6200 lux auto-select picked %q, want rx-led", src.Receiver())
	}
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("events %+v", events)
	}
	if events[0].BitString() != src.Packet().BitString() {
		t.Fatalf("decoded %q, want %q", events[0].BitString(), src.Packet().BitString())
	}
}

// TestPipelineAutoSelectUnsupported: only sources that know their
// ambient level support the policy.
func TestPipelineAutoSelectUnsupported(t *testing.T) {
	tr, _ := testTrace(t)
	pipe, err := NewPipeline(NewTraceSource(tr, 0), Threshold(), WithReceiverAutoSelect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Stream(context.Background()); err == nil {
		t.Fatal("trace source should reject WithReceiverAutoSelect")
	}
}

// TestPipelineCodebook: the codebook stage fills CodeIndex and
// corrects within the codebook's Hamming budget.
func TestPipelineCodebook(t *testing.T) {
	cb, err := NewCodebook(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr, packet := testTrace(t)
	pipe, err := NewPipeline(NewTraceSource(tr, 0), Threshold(),
		WithExpectedSymbols(8), WithPreRoll(-1), WithCodebook(cb))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("events %+v", events)
	}
	ev := events[0]
	if ev.CodeIndex < 0 || ev.CodeDistance != 0 {
		t.Fatalf("codebook stage: index %d distance %d", ev.CodeIndex, ev.CodeDistance)
	}
	word, err := cb.Encode(ev.CodeIndex)
	if err != nil {
		t.Fatal(err)
	}
	got := ""
	for _, b := range word {
		got += string('0' + byte(b))
	}
	if got != packet.BitString() {
		t.Fatalf("codeword %q, want %q", got, packet.BitString())
	}
}

// TestPipelineCollision: the whole-stream Collision strategy carries
// the spectral report on its events.
func TestPipelineCollision(t *testing.T) {
	tr, _ := testTrace(t)
	pipe, err := NewPipeline(NewTraceSource(tr, 700), Collision(CollisionOptions{MaxFreq: 100}))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("events %+v", events)
	}
	if events[0].Collision == nil || events[0].Collision.DominantFreq <= 0 {
		t.Fatalf("collision report %+v", events[0].Collision)
	}
}

// TestPipelineDTWClassify: the whole-stream classifier strategy
// labels a stream with its nearest baseline.
func TestPipelineDTWClassify(t *testing.T) {
	baseline := func(payload string, seed int64) *Trace {
		link, _, err := (IndoorBench{
			Height: 0.20, SymbolWidth: 0.03, Speed: 0.08,
			Payload: payload, Seed: seed,
		}).Build()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := link.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	clf := NewClassifier(0)
	if err := clf.AddBaseline("10", baseline("10", 1)); err != nil {
		t.Fatal(err)
	}
	if err := clf.AddBaseline("00", baseline("00", 2)); err != nil {
		t.Fatal(err)
	}
	probe, _ := testTrace(t) // payload "10", different seed
	pipe, err := NewPipeline(NewTraceSource(probe, 0), DTWClassify(clf))
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Err != nil {
		t.Fatalf("events %+v", events)
	}
	if events[0].Label != "10" {
		t.Fatalf("classified %q (matches %+v), want 10", events[0].Label, events[0].Matches)
	}
}

// TestPipelineCancel: a blocked live source unblocks on context
// cancellation and the pipeline reports the cancellation.
func TestPipelineCancel(t *testing.T) {
	ch := make(chan SourceChunk) // never fed, never closed
	pipe, err := NewPipeline(NewChunkSource(1000, ch), Threshold())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	events, err := pipe.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, ok := <-events:
		if ok {
			t.Fatal("unexpected event from an empty canceled pipeline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled pipeline did not close its event channel")
	}
	if !errors.Is(pipe.Err(), context.Canceled) {
		t.Fatalf("pipeline error %v, want context.Canceled", pipe.Err())
	}
}

// TestPipelineSingleShot: Run/Stream may be called once.
func TestPipelineSingleShot(t *testing.T) {
	tr, _ := testTrace(t)
	pipe, err := NewPipeline(NewTraceSource(tr, 0), Threshold(), WithExpectedSymbols(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Stream(context.Background()); err == nil {
		t.Fatal("second Stream should fail")
	}
}

// TestPipelineNetSource: a node streams a synthetic packet pass over
// the rxnet protocol into a NetSource pipeline; the detection carries
// the node's session key.
func TestPipelineNetSource(t *testing.T) {
	src, err := ListenSource("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var hello NodeHello
	helloSeen := make(chan struct{})
	src.OnHello(func(h NodeHello) {
		hello = h
		close(helloSeen)
	})
	pipe, err := NewPipeline(src, Threshold(), WithExpectedSymbols(12))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, err := pipe.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}

	stream := synthPacketStream("1001", 1000, 3)
	node, err := rxnet.Dial(ctx, src.Addr(), rxnet.Hello{NodeID: 9, PosX: 1, Height: 0.75, Name: "pole-9"})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.StreamChunk(0, 1000, stream); err != nil {
		t.Fatal(err)
	}
	node.Close()

	// Wait for full ingest, then flush the open segment.
	deadline := time.Now().Add(10 * time.Second)
	for pipe.Stats().SamplesIn < int64(len(stream)) {
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d samples", pipe.Stats().SamplesIn, len(stream))
		}
		time.Sleep(2 * time.Millisecond)
	}
	pipe.Flush()

	select {
	case ev := <-events:
		if ev.Err != nil {
			t.Fatal(ev.Err)
		}
		if ev.BitString() != "1001" {
			t.Fatalf("decoded %q over the network, want 1001", ev.BitString())
		}
		if ev.Session != uint64(9)<<32 {
			t.Fatalf("session %d, want %d", ev.Session, uint64(9)<<32)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no detection from the net source")
	}
	select {
	case <-helloSeen:
		if hello.NodeID != 9 || hello.Name != "pole-9" {
			t.Fatalf("hello %+v", hello)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hello callback not invoked")
	}
	cancel()
	for range events {
	}
	if !errors.Is(pipe.Err(), context.Canceled) {
		t.Fatalf("pipeline error %v after cancel", pipe.Err())
	}
}

// TestPipelineWithTelemetry runs a streaming pipeline with a metrics
// registry attached and checks the full observability surface: the
// per-strategy event counters and detection-latency histogram, plus
// the engine series wired through the same registry.
func TestPipelineWithTelemetry(t *testing.T) {
	tr, packet := testTrace(t)
	tel := NewTelemetry()
	pipe, err := NewPipeline(NewTraceSource(tr, 500), Threshold(),
		WithExpectedSymbols(8),
		WithTelemetry(tel),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var decoded int
	for _, ev := range events {
		if ev.Err == nil && ev.BitString() == packet.BitString() {
			decoded++
		}
	}
	if decoded != 1 {
		t.Fatalf("decoded %d matching events, want 1", decoded)
	}

	snap := tel.Snapshot()
	if got := snap.Counters[`pl_pipeline_events_total{strategy="threshold"}`]; got != int64(len(events)) {
		t.Fatalf("pl_pipeline_events_total = %d, want %d", got, len(events))
	}
	var errEvents int64
	for _, ev := range events {
		if ev.Err != nil {
			errEvents++
		}
	}
	if got := snap.Counters[`pl_pipeline_event_errors_total{strategy="threshold"}`]; got != errEvents {
		t.Fatalf("pl_pipeline_event_errors_total = %d, want %d", got, errEvents)
	}
	lat, ok := snap.Histograms[`pl_pipeline_detection_latency_ns{strategy="threshold"}`]
	if !ok {
		t.Fatal("detection latency histogram not registered")
	}
	if lat.Count != int64(len(events)) {
		t.Fatalf("latency histogram count = %d, want %d", lat.Count, len(events))
	}
	if lat.P50 <= 0 || lat.P99 < lat.P50 || lat.Max < int64(lat.P99) {
		t.Fatalf("latency quantiles inconsistent: p50=%g p99=%g max=%d", lat.P50, lat.P99, lat.Max)
	}

	// The engine's own series must land in the same registry.
	if got := snap.Counters["pl_engine_detections_total"]; got != 1 {
		t.Fatalf("pl_engine_detections_total = %d, want 1", got)
	}
	if snap.Counters["pl_engine_samples_in_total"] != pipe.Stats().SamplesIn {
		t.Fatalf("pl_engine_samples_in_total = %d, want %d",
			snap.Counters["pl_engine_samples_in_total"], pipe.Stats().SamplesIn)
	}
	if _, ok := snap.Histograms["pl_engine_decode_step_ns"]; !ok {
		t.Fatal("engine decode-step histogram not registered")
	}
}

// TestPipelineWholeStreamTelemetry checks that a whole-stream
// strategy counts its events (no latency stamp — analysis runs at end
// of stream).
func TestPipelineWholeStreamTelemetry(t *testing.T) {
	tr, _ := testTrace(t)
	tel := NewTelemetry()
	pipe, err := NewPipeline(NewTraceSource(tr, 1024), Collision(CollisionOptions{}),
		WithTelemetry(tel),
	)
	if err != nil {
		t.Fatal(err)
	}
	events, err := pipe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events, want 1", len(events))
	}
	snap := tel.Snapshot()
	if got := snap.Counters[`pl_pipeline_events_total{strategy="collision"}`]; got != 1 {
		t.Fatalf("pl_pipeline_events_total = %d, want 1", got)
	}
	if lat := snap.Histograms[`pl_pipeline_detection_latency_ns{strategy="collision"}`]; lat.Count != 0 {
		t.Fatalf("whole-stream latency histogram count = %d, want 0", lat.Count)
	}
}
