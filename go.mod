module passivelight

go 1.24
