package passivelight

import (
	"context"
	"fmt"
	"testing"
	"time"

	"passivelight/internal/cluster"
	"passivelight/internal/cluster/chaos"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
)

// waitChurn polls cond for up to 15 s — membership convergence,
// eviction and throttle propagation are all asynchronous.
func waitChurn(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// joinChurnEngine announces an engine to the router with a fast
// keepalive and returns the stop function — the caller stops it
// BEFORE crashing the engine so stale keepalives cannot clear the
// router's outage clock.
func joinChurnEngine(t *testing.T, routerAddr string, e *clusterEngine) (stop func()) {
	t.Helper()
	stop, err := cluster.Join(context.Background(), routerAddr, e.id, e.src.Addr(), cluster.JoinConfig{
		KeepAlive: 50 * time.Millisecond,
		Backoff:   rxnet.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("join %s: %v", e.id, err)
	}
	t.Cleanup(stop)
	return stop
}

// replayPacedChurnSession streams one session's links with accelerated
// wall-clock pacing (a bounded sleep per chunk), as the churn tier's
// stand-in for `plnet -mode load -pace` at test speed.
func replayPacedChurnSession(ctx context.Context, target string, k int, spec scenario.Spec) error {
	world, err := spec.CompileMulti()
	if err != nil {
		return err
	}
	node, err := rxnet.Dial(ctx, target, rxnet.Hello{NodeID: uint32(k + 1), Name: spec.Name})
	if err != nil {
		return err
	}
	defer node.Close()
	for _, l := range world.Links {
		tr, err := l.Link.Simulate()
		if err != nil {
			return fmt.Errorf("link %s: %w", l.Name, err)
		}
		for chunk := range tr.Chunks(2048) {
			if err := node.StreamChunk(uint32(l.Index), tr.Fs, chunk); err != nil {
				return err
			}
			// 200x accelerated pacing, capped well below the engines'
			// 250 ms idle timeout: with 16 concurrent sessions under
			// the race detector, a fatter gap plus scheduler delay can
			// starve a stream long enough to finalize it early.
			gap := time.Duration(float64(len(chunk)) / tr.Fs * float64(time.Second) / 200)
			if gap > 2*time.Millisecond {
				gap = 2 * time.Millisecond
			}
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

// replayChurnWave fans one wave of paced sessions through the router.
func replayChurnWave(t *testing.T, target string, specs []scenario.Spec, offset int) {
	t.Helper()
	sem := make(chan struct{}, 16)
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		go func(k int, spec scenario.Spec) {
			sem <- struct{}{}
			defer func() { <-sem }()
			errs <- replayPacedChurnSession(context.Background(), target, k, spec)
		}(offset+i, spec)
	}
	for range specs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// streamZeros ships n flat chunks on one stream — traffic that never
// crosses the activity threshold, so it exercises transport paths
// without perturbing the decode ledger.
func streamZeros(node *rxnet.Node, stream uint32, n int) error {
	chunk := make([]float64, 2048)
	for i := 0; i < n; i++ {
		if err := node.StreamChunk(stream, 1000, chunk); err != nil {
			return err
		}
	}
	return nil
}

// TestClusterChurnSelfHealing is the robustness lock for the
// self-healing tier: a router that starts on an EMPTY ring builds its
// fleet purely from EngineHello auto-joins, survives three
// kill/rejoin cycles (one graceful drain, two hard crashes with
// dead-engine eviction) under a 128-session paced load with zero
// packet loss and no operator Rebalance, propagates engine
// backpressure out to a shedding edge node, rides out injected
// connection faults, and keeps every loss counted and every
// membership change visible in pl_cluster_* telemetry.
func TestClusterChurnSelfHealing(t *testing.T) {
	load, err := scenario.GetLoad("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 128
	specs, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}

	reg := NewTelemetry()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		AutoAdmit:         true,
		RingBatchWindow:   -1,       // this test asserts one epoch bump per join
		ReplayBytes:       20 << 10, // force byte-bound evictions (a chunk frame is ~16 KiB)
		RedialBackoff:     20 * time.Millisecond,
		RedialBackoffMax:  200 * time.Millisecond,
		DeadEngineTimeout: 250 * time.Millisecond,
		Metrics:           reg,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := router.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if got := router.Stats().Engines; got != 0 {
		t.Fatalf("router starts with %d engines, want an empty ring", got)
	}

	// The fleet assembles itself: three engines announce and join.
	a := startClusterEngine(t, "churn-a")
	b := startClusterEngine(t, "churn-b")
	c := startClusterEngine(t, "churn-c")
	stopJoinA := joinChurnEngine(t, addr, a)
	stopJoinB := joinChurnEngine(t, addr, b)
	stopJoinC := joinChurnEngine(t, addr, c)
	waitChurn(t, "three auto-joins", func() bool { return router.Stats().Engines == 3 })
	epoch := router.Stats().Epoch
	if epoch < 3 {
		t.Fatalf("epoch after three joins = %d, want >= 3", epoch)
	}
	bumped := func(what string) uint64 {
		t.Helper()
		now := router.Stats().Epoch
		if now <= epoch {
			t.Fatalf("%s did not bump the epoch (%d -> %d)", what, epoch, now)
		}
		return now
	}

	// Wave 1: healthy trio.
	replayChurnWave(t, addr, specs[:32], 0)
	waitDecoded(t, "wave 1 (healthy trio)", 32, a, b, c)

	// Cycle 1 — graceful: churn-a drains, hands its streams off, dies,
	// restarts on a fresh port and rejoins under the same identity.
	// Its ring slice must follow the ID to the new address.
	stopJoinA()
	a.src.Drain()
	for _, s := range a.src.Sessions() {
		a.src.ForceRedirect(s)
	}
	time.Sleep(100 * time.Millisecond) // let NACKs reach the router
	a.stop()
	a2 := startClusterEngine(t, "churn-a")
	joinChurnEngine(t, addr, a2)
	waitChurn(t, "churn-a address refresh", func() bool {
		st := router.Stats()
		return st.Engines == 3 && st.Epoch > epoch
	})
	epoch = bumped("graceful rejoin")

	// Wave 2: restarted churn-a takes traffic again.
	replayChurnWave(t, addr, specs[32:64], 32)
	waitDecoded(t, "wave 2 (after graceful cycle)", 64, a, b, c, a2)

	// Cycle 2 — hard crash: churn-b dies with no drain. The router's
	// outage clock starts when its connection drops, the janitor
	// evicts it from the ring, and a restarted churn-b re-admits
	// itself. Crash happens between waves so the counted ledger stays
	// exact: nothing was in flight on the dead socket.
	stopJoinB() // a live keepalive would reset the outage clock
	// Crash with nothing resident: wave 2 is fully decoded, so once the
	// idle reaper flushes b's sessions the kill is provably mid-gap.
	waitChurn(t, "churn-b sessions to flush", func() bool { return b.pipe.Stats().Sessions == 0 })
	b.stop()
	waitChurn(t, "churn-b eviction", func() bool { return router.Stats().Engines == 2 })
	epoch = bumped("dead-engine eviction")
	b2 := startClusterEngine(t, "churn-b")
	joinChurnEngine(t, addr, b2)
	waitChurn(t, "churn-b re-admission", func() bool { return router.Stats().Engines == 3 })
	epoch = bumped("crash rejoin")

	// Wave 3.
	replayChurnWave(t, addr, specs[64:96], 64)
	waitDecoded(t, "wave 3 (after crash cycle)", 96, a, b, c, a2, b2)

	// Cycle 3 — second hard crash, this time churn-c.
	stopJoinC()
	waitChurn(t, "churn-c sessions to flush", func() bool { return c.pipe.Stats().Sessions == 0 })
	c.stop()
	waitChurn(t, "churn-c eviction", func() bool { return router.Stats().Engines == 2 })
	c2 := startClusterEngine(t, "churn-c")
	joinChurnEngine(t, addr, c2)
	waitChurn(t, "churn-c re-admission", func() bool { return router.Stats().Engines == 3 })
	epoch = bumped("second crash rejoin")

	// Wave 4: full fleet again; the cumulative ledger must be exact.
	replayChurnWave(t, addr, specs[96:], 96)
	engines := []*clusterEngine{a, b, c, a2, b2, c2}
	waitDecoded(t, "wave 4 (final)", 128, engines...)

	// Fault injection: a reliable edge node streams through a faulty
	// proxy (drops, duplicates, delays, mid-frame severs) and survives
	// a full partition — every failure lands as a redial or a counted
	// reset, never a hang or a silent splice.
	inj := chaos.NewInjector(chaos.Faults{
		Seed:      42,
		DropProb:  0.15,
		DupProb:   0.10,
		DelayProb: 0.05,
		Delay:     2 * time.Millisecond,
		SeverProb: 0.05,
	})
	proxy, err := chaos.NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	fctx, fcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer fcancel()
	faultNode, err := rxnet.DialReliable(fctx, proxy.Addr(), rxnet.Hello{NodeID: 900, Name: "fault-probe"},
		rxnet.RedialConfig{
			Backoff:     rxnet.Backoff{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
			ResendBytes: 64 << 10, // resend the tail on every redial: the duplicate-delivery audit below
			Logf:        t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer faultNode.Close()
	// Stream until the dice land at least one fault. The roll count
	// depends on how the proxy's relay loop slices the byte stream, so
	// a fixed chunk budget is not deterministic — the loop is.
	for i := 0; i < 400 && inj.Injected() == 0; i++ {
		if err := streamZeros(faultNode, 1, 1); err != nil {
			t.Fatalf("fault probe (chunk %d): %v", i, err)
		}
	}
	if inj.Injected() == 0 {
		t.Error("chaos proxy injected no faults")
	}
	proxy.Sever() // full partition; the probe must redial through it
	for i := 0; i < 400 && faultNode.Redials() == 0; i++ {
		// A severed socket can swallow writes into the kernel buffer
		// before the reset surfaces; keep pushing until it does.
		if err := streamZeros(faultNode, 1, 1); err != nil {
			t.Fatalf("fault probe (post-partition): %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if faultNode.Redials() < 1 {
		t.Errorf("fault probe redials = %d, want >= 1 after the partition", faultNode.Redials())
	}
	if got := faultNode.Resent(); got < 1 {
		t.Errorf("fault probe resent %d tail chunks across its redials, want >= 1", got)
	}

	// Backpressure: every engine signals hot, the router relays the
	// pause to the nodes feeding them, and a shed-mode edge node drops
	// at the edge — with the gap visible to the server as a counted
	// reset once the stream resumes.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	shedNode, err := rxnet.DialReliable(sctx, addr, rxnet.Hello{NodeID: 901, Name: "shed-probe"},
		rxnet.RedialConfig{FlowControl: true, ShedWhilePaused: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer shedNode.Close()
	if err := streamZeros(shedNode, 1, 1); err != nil { // register an owner
		t.Fatalf("shed probe: %v", err)
	}
	live := []*clusterEngine{a2, b2, c2}
	for _, e := range live {
		e.src.Throttle(true)
	}
	waitChurn(t, "throttle pause to reach the shed probe", shedNode.Paused)
	if err := streamZeros(shedNode, 1, 4); err != nil {
		t.Fatalf("shed probe (paused): %v", err)
	}
	if got := shedNode.Shed(); got < 1 {
		t.Errorf("shed probe shed %d chunks while paused, want >= 1", got)
	}
	for _, e := range live {
		e.src.Throttle(false)
	}
	waitChurn(t, "throttle release to reach the shed probe", func() bool { return !shedNode.Paused() })
	if err := streamZeros(shedNode, 1, 1); err != nil {
		t.Fatalf("shed probe (resumed): %v", err)
	}
	waitChurn(t, "shed gap counted as a reset", func() bool {
		var resets int64
		for _, e := range live {
			resets += e.src.StreamResets()
		}
		return resets >= 1
	})

	// The ledger: exactly one decode per session, no decode errors, no
	// dropped chunks, and bounded memory once the sessions flush.
	var total int64
	for _, e := range engines {
		total += e.decoded.Load()
		if n := e.errs.Load(); n != 0 {
			t.Errorf("engine %s: %d decode errors", e.id, n)
		}
	}
	if total != 128 {
		t.Fatalf("decoded %d packets for 128 sessions", total)
	}
	// Duplicate-delivery audit: the fault probe resent its tail to the
	// SAME router after each redial, and the chaos proxy duplicated raw
	// writes outright. Behind a single router every in-order
	// retransmission must be absorbed at the router (its replay buffer
	// skips seqs it already forwarded), so no duplicate ever reaches an
	// engine — cross-router failover, where engines DO see and discard
	// replayed chunks, is audited in TestClusterDualRouterFailoverZeroLoss.
	var dups int64
	for _, e := range engines {
		dups += e.src.DuplicateChunks()
	}
	if dups != 0 {
		t.Errorf("engines discarded %d duplicate chunks behind a single router, want 0 (router absorbs in-order resends)", dups)
	}
	for _, e := range live {
		if n := e.src.DroppedChunks(); n != 0 {
			t.Errorf("engine %s dropped %d chunks", e.id, n)
		}
	}
	waitChurn(t, "engine buffers to drain", func() bool {
		var buffered int64
		for _, e := range live {
			buffered += e.pipe.Stats().BufferedSamples
		}
		return buffered < 64<<10
	})

	snap := reg.Snapshot()
	counters := snap.Counters
	if got := counters["pl_cluster_engine_joins_total"]; got < 5 {
		t.Errorf("pl_cluster_engine_joins_total = %d, want >= 5 (3 joins + rejoins)", got)
	}
	if got := counters["pl_cluster_engines_evicted_total"]; got != 2 {
		t.Errorf("pl_cluster_engines_evicted_total = %d, want 2", got)
	}
	if got := counters["pl_cluster_replay_evicted_bytes_total"]; got == 0 {
		t.Error("pl_cluster_replay_evicted_bytes_total = 0; byte bound never trimmed")
	}
	if got := counters["pl_cluster_throttle_signals_total"]; got < 2 {
		t.Errorf("pl_cluster_throttle_signals_total = %d, want >= 2 (engage + release)", got)
	}
	if got := counters["pl_cluster_throttle_pauses_total"]; got < 1 {
		t.Errorf("pl_cluster_throttle_pauses_total = %d, want >= 1", got)
	}
	if got := counters["pl_cluster_handoffs_total"]; got < 1 {
		t.Errorf("pl_cluster_handoffs_total = %d, want >= 1", got)
	}
	t.Logf("churn: decoded=%d epoch=%d joins=%d evictions=%d handoffs=%d failovers=%d replay_evicted=%dB injected=%d shed=%d",
		total, router.Stats().Epoch,
		counters["pl_cluster_engine_joins_total"],
		counters["pl_cluster_engines_evicted_total"],
		counters["pl_cluster_handoffs_total"],
		counters["pl_cluster_failovers_total"],
		counters["pl_cluster_replay_evicted_bytes_total"],
		inj.Injected(), shedNode.Shed())
}
