package passivelight

// The benchmark harness: one testing.B benchmark per table/figure of
// the paper (see DESIGN.md section 4 and EXPERIMENTS.md). Each bench
// regenerates its experiment; run with
//
//	go test -bench=. -benchmem
//
// Figure-level benches measure the full simulate+decode pipeline, so
// their ns/op is the cost of reproducing that figure once.

import (
	"testing"

	"passivelight/internal/capacity"
	"passivelight/internal/experiments"
	"passivelight/internal/frontend"
)

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig5Decode regenerates Fig. 5: the clean indoor packets
// ('00' and '10') end to end.
func BenchmarkFig5Decode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5()
		benchErr(b, err)
		if !res.Runs[0].Success || !res.Runs[1].Success {
			b.Fatal("fig5 decode failed")
		}
	}
}

// BenchmarkFig6aPoint measures one decodable-region probe (Fig. 6(a)):
// is (h=30 cm, w=4.5 cm) decodable?
func BenchmarkFig6aPoint(b *testing.B) {
	cfg := capacity.SweepConfig{Trials: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := capacity.Decodable(0.30, 0.045, cfg)
		benchErr(b, err)
		if !ok {
			b.Fatal("point should decode")
		}
	}
}

// BenchmarkFig6bPoint measures one narrowest-width search at h=25 cm
// (Fig. 6(b) inner loop).
func BenchmarkFig6bPoint(b *testing.B) {
	cfg := capacity.SweepConfig{Trials: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, ok, err := capacity.NarrowestWidth(0.25, 0.02, 0.075, 0.01, cfg)
		benchErr(b, err)
		if !ok {
			b.Fatal("no decodable width")
		}
	}
}

// BenchmarkFig7Decode regenerates Fig. 7: decode under rippling
// fluorescent ceiling light.
func BenchmarkFig7Decode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7()
		benchErr(b, err)
		if !res.Success {
			b.Fatal("fig7 decode failed")
		}
	}
}

// BenchmarkDTWClassify regenerates the Sec. 4.2 study: distorted
// packet classified against two baselines (Fig. 8).
func BenchmarkDTWClassify(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8DTW()
		benchErr(b, err)
		if res.Classified != "10" {
			b.Fatal("misclassified")
		}
	}
}

// BenchmarkFFTCollision regenerates Fig. 10: the three collision
// cases with FFT analysis.
func BenchmarkFFTCollision(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10()
		benchErr(b, err)
		if len(res.Cases) != 3 {
			b.Fatal("collision cases missing")
		}
	}
}

// BenchmarkFrontendRespond regenerates the Fig. 11 device table
// (saturation sweep + sensitivity measurement for all receivers).
func BenchmarkFrontendRespond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11Table()
		benchErr(b, err)
		if len(res.Rows) != 4 {
			b.Fatal("fig11 rows missing")
		}
	}
}

// BenchmarkCarSignature regenerates Figs. 13-14: both bare-car
// optical signatures and their classification.
func BenchmarkCarSignature(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13_14()
		benchErr(b, err)
		if res.VolvoModel != "hatchback" || res.BMWModel != "sedan" {
			b.Fatal("signature mismatch")
		}
	}
}

// BenchmarkFig15 regenerates Fig. 15: RX-LED at 450 vs 100 lux.
func BenchmarkFig15(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15()
		benchErr(b, err)
		if !res.Runs[0].Success || res.Runs[1].Success {
			b.Fatal("fig15 outcome drifted")
		}
	}
}

// BenchmarkFig16 regenerates Fig. 16: PD bare vs capped at 100 lux.
func BenchmarkFig16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16()
		benchErr(b, err)
		if res.Runs[0].Success || !res.Runs[1].Success {
			b.Fatal("fig16 outcome drifted")
		}
	}
}

// BenchmarkFig17 regenerates Fig. 17: the three well-illuminated
// outdoor decodes.
func BenchmarkFig17(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17()
		benchErr(b, err)
		for _, run := range res.Runs {
			if !run.Success {
				b.Fatal("fig17 run failed")
			}
		}
	}
}

// BenchmarkOutdoorSimulate isolates the channel+front-end simulation
// cost of one 18 km/h car pass (no decode).
func BenchmarkOutdoorSimulate(b *testing.B) {
	link, _, err := (OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           1,
	}).Build()
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPhaseDecode isolates the Sec. 5 decode (shape detection
// + threshold decode) on a pre-rendered trace.
func BenchmarkTwoPhaseDecode(b *testing.B) {
	link, _, err := (OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           1,
	}).Build()
	benchErr(b, err)
	tr, err := link.Simulate()
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCarPass(tr, DecodeOptions{ExpectedSymbols: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiverSelection measures the Sec. 4.4 dual-receiver
// policy across the ambient sweep.
func BenchmarkReceiverSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := frontend.SelectReceiver(6200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodebookBuild measures restricted-codebook generation
// (Sec. 4.2 code design, ablation A5).
func BenchmarkCodebookBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCodebook(8, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}
