package passivelight

// The benchmark harness: one testing.B benchmark per table/figure of
// the paper (see DESIGN.md section 4 and EXPERIMENTS.md). Each bench
// regenerates its experiment; run with
//
//	go test -bench=. -benchmem
//
// Figure-level benches measure the full simulate+decode pipeline, so
// their ns/op is the cost of reproducing that figure once.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"passivelight/internal/capacity"
	"passivelight/internal/channel"
	"passivelight/internal/experiments"
	"passivelight/internal/frontend"
	"passivelight/internal/telemetry"
)

func benchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig5Decode regenerates Fig. 5: the clean indoor packets
// ('00' and '10') end to end.
func BenchmarkFig5Decode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5()
		benchErr(b, err)
		if !res.Runs[0].Success || !res.Runs[1].Success {
			b.Fatal("fig5 decode failed")
		}
	}
}

// BenchmarkFig6aPoint measures one decodable-region probe (Fig. 6(a)):
// is (h=30 cm, w=4.5 cm) decodable?
func BenchmarkFig6aPoint(b *testing.B) {
	cfg := capacity.SweepConfig{Trials: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := capacity.Decodable(0.30, 0.045, cfg)
		benchErr(b, err)
		if !ok {
			b.Fatal("point should decode")
		}
	}
}

// BenchmarkFig6bPoint measures one narrowest-width search at h=25 cm
// (Fig. 6(b) inner loop).
func BenchmarkFig6bPoint(b *testing.B) {
	cfg := capacity.SweepConfig{Trials: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, ok, err := capacity.NarrowestWidth(0.25, 0.02, 0.075, 0.01, cfg)
		benchErr(b, err)
		if !ok {
			b.Fatal("no decodable width")
		}
	}
}

// BenchmarkFig7Decode regenerates Fig. 7: decode under rippling
// fluorescent ceiling light.
func BenchmarkFig7Decode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7()
		benchErr(b, err)
		if !res.Success {
			b.Fatal("fig7 decode failed")
		}
	}
}

// BenchmarkDTWClassify regenerates the Sec. 4.2 study: distorted
// packet classified against two baselines (Fig. 8).
func BenchmarkDTWClassify(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8DTW()
		benchErr(b, err)
		if res.Classified != "10" {
			b.Fatal("misclassified")
		}
	}
}

// BenchmarkFFTCollision regenerates Fig. 10: the three collision
// cases with FFT analysis.
func BenchmarkFFTCollision(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10()
		benchErr(b, err)
		if len(res.Cases) != 3 {
			b.Fatal("collision cases missing")
		}
	}
}

// BenchmarkFrontendRespond regenerates the Fig. 11 device table
// (saturation sweep + sensitivity measurement for all receivers).
func BenchmarkFrontendRespond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11Table()
		benchErr(b, err)
		if len(res.Rows) != 4 {
			b.Fatal("fig11 rows missing")
		}
	}
}

// BenchmarkCarSignature regenerates Figs. 13-14: both bare-car
// optical signatures and their classification.
func BenchmarkCarSignature(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13_14()
		benchErr(b, err)
		if res.VolvoModel != "hatchback" || res.BMWModel != "sedan" {
			b.Fatal("signature mismatch")
		}
	}
}

// BenchmarkFig15 regenerates Fig. 15: RX-LED at 450 vs 100 lux.
func BenchmarkFig15(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15()
		benchErr(b, err)
		if !res.Runs[0].Success || res.Runs[1].Success {
			b.Fatal("fig15 outcome drifted")
		}
	}
}

// BenchmarkFig16 regenerates Fig. 16: PD bare vs capped at 100 lux.
func BenchmarkFig16(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16()
		benchErr(b, err)
		if res.Runs[0].Success || !res.Runs[1].Success {
			b.Fatal("fig16 outcome drifted")
		}
	}
}

// BenchmarkFig17 regenerates Fig. 17: the three well-illuminated
// outdoor decodes.
func BenchmarkFig17(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17()
		benchErr(b, err)
		for _, run := range res.Runs {
			if !run.Success {
				b.Fatal("fig17 run failed")
			}
		}
	}
}

// BenchmarkOutdoorSimulate isolates the channel+front-end simulation
// cost of one 18 km/h car pass (no decode).
func BenchmarkOutdoorSimulate(b *testing.B) {
	link, _, err := (OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           1,
	}).Build()
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioMultiLane renders the multi-lane preset (two
// staggered tagged cars at distinct lateral shares) end to end
// through the channel. The render plan keeps its specialized fast
// path on N-object scenes — car bodies and roof tags are
// piecewise-constant profiles walked with monotone cursors, the lane
// offset only shifts the trajectory clock — so no generic-evaluator
// fallback occurs; the bench asserts that with channel.PlanSpecialized
// and would fail loudly on a regression.
func BenchmarkScenarioMultiLane(b *testing.B) {
	spec, err := ScenarioPreset("multi-lane")
	benchErr(b, err)
	world, err := spec.Compile()
	benchErr(b, err)
	if !channel.PlanSpecialized(world.Link.Scene, world.Link.Receiver) {
		b.Fatal("multi-lane scene fell off the render plan fast path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := world.Link.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioTagFleet renders the tag-fleet preset (three
// staggered tags sharing the FoV laterally); also pinned to the
// render plan fast path.
func BenchmarkScenarioTagFleet(b *testing.B) {
	spec, err := ScenarioPreset("tag-fleet")
	benchErr(b, err)
	world, err := spec.Compile()
	benchErr(b, err)
	if !channel.PlanSpecialized(world.Link.Scene, world.Link.Receiver) {
		b.Fatal("tag-fleet scene fell off the render plan fast path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := world.Link.Simulate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPhaseDecode isolates the Sec. 5 decode (shape detection
// + threshold decode) on a pre-rendered trace.
func BenchmarkTwoPhaseDecode(b *testing.B) {
	link, _, err := (OutdoorCarPass{
		Payload:        "00",
		NoiseFloorLux:  6200,
		ReceiverHeight: 0.75,
		Seed:           1,
	}).Build()
	benchErr(b, err)
	tr, err := link.Simulate()
	benchErr(b, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCarPass(tr, DecodeOptions{ExpectedSymbols: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiverSelection measures the Sec. 4.4 dual-receiver
// policy across the ambient sweep.
func BenchmarkReceiverSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := frontend.SelectReceiver(6200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodebookBuild measures restricted-codebook generation
// (Sec. 4.2 code design, ablation A5).
func BenchmarkCodebookBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCodebook(8, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrace renders one indoor '10' pass for the decode benchmarks.
func benchTrace(b *testing.B) *Trace {
	b.Helper()
	link, _, err := (IndoorBench{
		Height:      0.20,
		SymbolWidth: 0.03,
		Speed:       0.08,
		Payload:     "10",
		Seed:        42,
	}).Build()
	benchErr(b, err)
	tr, err := link.Simulate()
	benchErr(b, err)
	return tr
}

// BenchmarkBatchDecode is the baseline the streaming decoder is
// measured against: one full-trace adaptive threshold decode.
func BenchmarkBatchDecode(b *testing.B) {
	tr := benchTrace(b)
	b.SetBytes(int64(8 * tr.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Decode(tr, DecodeOptions{ExpectedSymbols: 8})
		benchErr(b, err)
		if res.ParseErr != nil {
			b.Fatal(res.ParseErr)
		}
	}
}

// BenchmarkStreamDecodeChunked decodes the same trace through a
// streaming session fed in 512-sample chunks (online segmentation +
// per-segment decode), for comparison against BenchmarkBatchDecode.
func BenchmarkStreamDecodeChunked(b *testing.B) {
	tr := benchTrace(b)
	b.SetBytes(int64(8 * tr.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewStreamDecoder(StreamConfig{Fs: tr.Fs, Decode: DecodeOptions{ExpectedSymbols: 8}})
		benchErr(b, err)
		got := 0
		for chunk := range tr.Chunks(512) {
			for _, det := range dec.Feed(chunk) {
				if det.Err == nil {
					got++
				}
			}
		}
		for _, det := range dec.Flush() {
			if det.Err == nil {
				got++
			}
		}
		if got != 1 {
			b.Fatalf("decoded %d packets, want 1", got)
		}
	}
}

// fleetStreamCache memoizes the rendered fleet-load sessions per
// session count, so the shard sweep does not re-render 128 scenario
// traces per sub-benchmark.
var fleetStreamCache = map[int]fleetStreams{}

type fleetStreams struct {
	fs      float64
	symbols int
	traces  [][]float64
}

// fleetLoadStreams expands the fleet-load preset to the given session
// count and renders every staggered session's trace — the engine
// benchmarks run entirely from the spec-driven load, not synthetic
// chunk feeds.
func fleetLoadStreams(b *testing.B, sessions int) fleetStreams {
	b.Helper()
	if s, ok := fleetStreamCache[sessions]; ok {
		return s
	}
	load, err := ScenarioLoadPreset("fleet-load")
	benchErr(b, err)
	load.Sessions = sessions
	specs, err := load.Expand()
	benchErr(b, err)
	out := fleetStreams{traces: make([][]float64, len(specs))}
	for i, spec := range specs {
		c, err := spec.Compile()
		benchErr(b, err)
		tr, err := c.Link.Simulate()
		benchErr(b, err)
		out.traces[i] = tr.Samples
		out.fs = tr.Fs
		out.symbols = spec.Decode.ExpectedSymbols
	}
	fleetStreamCache[sessions] = out
	return out
}

// engineBenchRun drives one fleet-load expansion through the engine
// per iteration: every staggered session's rendered trace is fed
// chunk by chunk under its scenario stream id, all sessions decode on
// the sharded worker pool, and the iteration ends when every
// detection is out (consumed from the batched output). ns/op is the
// cost of one concurrent fleet round; MB/s is aggregate sample ingest
// throughput. shards 0 selects the engine's auto (GOMAXPROCS-bound)
// sharding; workers is forced to cover every shard so a shard sweep
// on a small box still exercises N independent queues.
//
// The run records into a telemetry registry (so the measured cost
// includes live instrumentation, keeping the committed baselines
// honest about production overhead) and reports the detection-latency
// quantiles as custom bench metrics, which benchdump folds back into
// a HistogramSnapshot in the committed BENCH files.
func engineBenchRun(b *testing.B, sessions, shards int) {
	b.Helper()
	// Above 512 sessions the fleet cycles a 512-trace rendered pool
	// (session i feeds trace i mod 512): the engine still tracks every
	// session independently, but render time and resident trace memory
	// stay bounded for the 1024/4096 sweeps.
	rendered := sessions
	if rendered > 512 {
		rendered = 512
	}
	fleet := fleetLoadStreams(b, rendered)
	total := 0
	for id := 0; id < sessions; id++ {
		total += len(fleet.traces[id%len(fleet.traces)])
	}
	workers := 0
	if shards > 0 {
		workers = max(shards, runtime.GOMAXPROCS(0))
	}
	tel := telemetry.NewRegistry()
	b.SetBytes(int64(8 * total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewStreamEngine(StreamEngineConfig{
			Session:     StreamConfig{Fs: fleet.fs, Decode: DecodeOptions{ExpectedSymbols: fleet.symbols}},
			Workers:     workers,
			Shards:      shards,
			IdleTimeout: -1,
			Metrics:     tel,
		})
		benchErr(b, err)
		done := make(chan int)
		go func() {
			got := 0
			for batch := range eng.Batches() {
				for _, det := range batch {
					if det.Err == nil {
						got++
					}
				}
				RecycleDetections(batch)
			}
			done <- got
		}()
		for id := 0; id < sessions; id++ {
			s := fleet.traces[id%len(fleet.traces)]
			sid := ScenarioStreamID(id, 0)
			for lo := 0; lo < len(s); lo += 1024 {
				hi := lo + 1024
				if hi > len(s) {
					hi = len(s)
				}
				if err := eng.Feed(sid, 0, s[lo:hi]); err != nil {
					b.Fatal(err)
				}
			}
		}
		eng.FlushAll()
		st := eng.Stats()
		eng.Close()
		if got := <-done; got != sessions {
			b.Fatalf("decoded %d of %d sessions", got, sessions)
		}
		if st.DroppedSamples != 0 {
			b.Fatalf("dropped %d samples", st.DroppedSamples)
		}
		// Memory bound: the engine must never retain whole streams.
		if st.BufferedSamples > int64(sessions)*4000 {
			b.Fatalf("buffered %d samples across %d sessions", st.BufferedSamples, sessions)
		}
	}
	b.StopTimer()
	// Latency quantiles accumulate across all iterations' engines (the
	// histogram series is shared through the registry).
	if lat := tel.Histogram("pl_engine_detection_latency_ns", "").Snapshot(); lat.Count > 0 {
		b.ReportMetric(lat.P50, "lat-p50-ns")
		b.ReportMetric(lat.P90, "lat-p90-ns")
		b.ReportMetric(lat.P99, "lat-p99-ns")
		b.ReportMetric(float64(lat.Max), "lat-max-ns")
		b.ReportMetric(float64(lat.Count), "lat-count")
	}
}

// BenchmarkEngineSessions128 is the aggregate-throughput headline
// number: 128 concurrent sessions, auto sharding.
func BenchmarkEngineSessions128(b *testing.B) { engineBenchRun(b, 128, 0) }

// BenchmarkEngineSessions512 scales the session count 4x to expose
// table-pressure effects the 128-way round hides.
func BenchmarkEngineSessions512(b *testing.B) { engineBenchRun(b, 512, 0) }

// BenchmarkEngineSessions1024 and ...4096 push into the regime where
// per-session state dominates: with lazy rings and the pooled
// decoder/batch buffers, memory per tracked session is what these
// numbers certify (traces cycle a 512-render pool above 512 sessions).
func BenchmarkEngineSessions1024(b *testing.B) { engineBenchRun(b, 1024, 0) }

func BenchmarkEngineSessions4096(b *testing.B) { engineBenchRun(b, 4096, 0) }

// BenchmarkEngineShards sweeps the shard count at a fixed 128
// sessions so the sharding win (or its absence on a small box) is
// visible in tier-1 bench output.
func BenchmarkEngineShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			engineBenchRun(b, 128, shards)
		})
	}
}

// BenchmarkEngineFeedParallel hammers the Feed path from GOMAXPROCS
// goroutines, each with its own session, against quiet streams (no
// packet, so decode work is minimal): it isolates the ingest
// fan-in — shard lookup, ring copy, wake — that a single global
// mutex/queue would serialize.
func BenchmarkEngineFeedParallel(b *testing.B) {
	eng, err := NewStreamEngine(StreamEngineConfig{
		Session:     StreamConfig{Fs: 1000, Decode: DecodeOptions{ExpectedSymbols: 12}},
		IdleTimeout: -1,
	})
	benchErr(b, err)
	go func() {
		for range eng.Batches() {
		}
	}()
	rng := benchRand(1)
	chunk := make([]float64, 1024)
	for i := range chunk {
		chunk[i] = 10 + 0.3*rng.NormFloat64()
	}
	var nextID atomic.Uint64
	b.SetBytes(int64(8 * len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := nextID.Add(1)
		for pb.Next() {
			if err := eng.Feed(id, 0, chunk); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	eng.Close()
}
