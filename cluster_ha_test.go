package passivelight

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"passivelight/internal/cluster"
	"passivelight/internal/rxnet"
	"passivelight/internal/scenario"
)

// replayHASession streams one expanded session against the dual-router
// tier: a reliable node dialing the primary router with the standby in
// its rotation, pacing chunks so a router kill lands mid-stream, as
// `plnet -mode load -routers a,b` does. The node is returned OPEN —
// a node that closed the moment its last write succeeded could strand
// that write in a freshly-killed router's socket buffer with nothing
// left to notice; holding the connection lets the control reader see
// the dead router and resend the buffered tail to the survivor.
func replayHASession(ctx context.Context, primary, standby string, k int, spec scenario.Spec) (*rxnet.Node, error) {
	world, err := spec.CompileMulti()
	if err != nil {
		return nil, err
	}
	node, err := rxnet.DialReliable(ctx, primary, rxnet.Hello{NodeID: uint32(k + 1), Name: spec.Name}, rxnet.RedialConfig{
		Addrs:       []string{standby},
		Backoff:     rxnet.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
		MaxDowntime: 15 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	for _, l := range world.Links {
		tr, err := l.Link.Simulate()
		if err != nil {
			node.Close()
			return nil, fmt.Errorf("link %s: %w", l.Name, err)
		}
		for chunk := range tr.Chunks(1024) {
			if err := node.StreamChunk(uint32(l.Index), tr.Fs, chunk); err != nil {
				node.Close()
				return nil, err
			}
			time.Sleep(2 * time.Millisecond) // paced: keep sessions in flight across the kill
		}
	}
	return node, nil
}

// TestClusterDualRouterFailoverZeroLoss is the acceptance lock for the
// replicated routing tier: two peered routers converge on a batched
// 3-engine join stampede with exactly one epoch bump each, then the
// router carrying all 128 paced sessions is killed mid-replay — every
// node fails over to the survivor, replayed duplicates are discarded
// engine-side, and the fleet still decodes 128/128 exactly once.
func TestClusterDualRouterFailoverZeroLoss(t *testing.T) {
	load, err := scenario.GetLoad("fleet-load")
	if err != nil {
		t.Fatal(err)
	}
	load.Sessions = 128
	specs, err := load.Expand()
	if err != nil {
		t.Fatal(err)
	}

	engines := []*clusterEngine{
		startClusterEngine(t, "engine-a"),
		startClusterEngine(t, "engine-b"),
		startClusterEngine(t, "engine-c"),
	}
	regA, regB := NewTelemetry(), NewTelemetry()
	logfFor := func(name string) func(string, ...any) {
		return func(format string, args ...any) { t.Logf("["+name+"] "+format, args...) }
	}
	routerA, err := cluster.NewRouter(cluster.RouterConfig{AutoAdmit: true, Metrics: regA, Logf: logfFor("router-a")})
	if err != nil {
		t.Fatal(err)
	}
	defer routerA.Close()
	routerB, err := cluster.NewRouter(cluster.RouterConfig{AutoAdmit: true, Metrics: regB, Logf: logfFor("router-b")})
	if err != nil {
		t.Fatal(err)
	}
	defer routerB.Close()
	addrA, err := routerA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := routerB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	routerA.AddPeer(addrB)
	routerB.AddPeer(addrA)

	// Join stampede: all three engines hello BOTH routers at once. The
	// default RingBatchWindow must coalesce each router's admissions —
	// and the peer merge must not add bumps — so both rings settle at
	// epoch 1: exactly one membership change for three joins.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, e := range engines {
		for _, raddr := range []string{addrA, addrB} {
			stop, err := cluster.Join(ctx, raddr, e.id, e.src.Addr(), cluster.JoinConfig{
				KeepAlive: 250 * time.Millisecond,
				Backoff:   rxnet.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond},
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer stop()
		}
	}
	joinDeadline := time.Now().Add(15 * time.Second)
	for {
		stA, stB := routerA.Stats(), routerB.Stats()
		if stA.Engines == 3 && stB.Engines == 3 && stA.PeersUp == 1 && stB.PeersUp == 1 {
			break
		}
		if time.Now().After(joinDeadline) {
			t.Fatalf("join stampede never converged: A=%+v B=%+v", stA, stB)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if eA, eB := routerA.Stats().Epoch, routerB.Stats().Epoch; eA != 1 || eB != 1 {
		t.Fatalf("epochs after batched stampede = A:%d B:%d, want exactly 1 each", eA, eB)
	}
	batches := regA.Snapshot().Counters["pl_cluster_ring_batches_total"] +
		regB.Snapshot().Counters["pl_cluster_ring_batches_total"]
	if batches < 1 || batches > 2 {
		t.Fatalf("ring batches across both routers = %d, want 1 or 2 (one flush each at most)", batches)
	}

	// Stream all 128 sessions at router A, then kill it mid-replay.
	// Nodes stay connected until every decode is confirmed (see
	// replayHASession), so the kill can never strand a session's tail.
	var nmu sync.Mutex
	var nodes []*rxnet.Node
	defer func() {
		nmu.Lock()
		defer nmu.Unlock()
		for _, n := range nodes {
			n.Close()
		}
	}()
	sem := make(chan struct{}, 16)
	errCh := make(chan error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(k int, spec scenario.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			node, err := replayHASession(context.Background(), addrA, addrB, k, spec)
			if err != nil {
				errCh <- fmt.Errorf("session %d: %w", k, err)
				return
			}
			nmu.Lock()
			nodes = append(nodes, node)
			nmu.Unlock()
		}(i, spec)
	}

	killDeadline := time.Now().Add(60 * time.Second)
	for regA.Snapshot().Counters["pl_cluster_chunks_forwarded_total"] < 48 {
		if time.Now().After(killDeadline) {
			t.Fatal("router A never forwarded enough traffic to kill it mid-replay")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("killing router A after %d forwarded chunks",
		regA.Snapshot().Counters["pl_cluster_chunks_forwarded_total"])
	routerA.Close()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitDecoded(t, "dual-router failover", int64(load.Sessions), engines...)

	// Zero loss AND zero duplication: every session decoded exactly
	// once (waitDecoded fatals on over-count), the nodes provably
	// resent their tails, and the engines discarded what the dead
	// router had already delivered.
	for _, e := range engines {
		if n := e.errs.Load(); n != 0 {
			t.Errorf("engine %s: %d decode errors", e.id, n)
		}
	}
	var resent int64
	nmu.Lock()
	for _, n := range nodes {
		resent += n.Resent()
	}
	nmu.Unlock()
	if resent == 0 {
		t.Error("no node resent its buffered tail; the kill missed the replay window")
	}
	var dups int64
	for _, e := range engines {
		dups += e.src.DuplicateChunks()
	}
	if dups == 0 {
		t.Error("engines discarded no duplicates; failover never replayed consumed chunks")
	}

	// The surviving router owns all the traffic that completed the run.
	stB := routerB.Stats()
	if stB.Routes == 0 {
		t.Error("surviving router holds no routes")
	}
	snapB := regB.Snapshot()
	if got := snapB.Counters["pl_cluster_chunks_forwarded_total"]; got == 0 {
		t.Error("surviving router forwarded nothing after the kill")
	}
	if got := snapB.Counters["pl_cluster_streams_routed_total"]; got == 0 {
		t.Error("surviving router routed no streams after the kill")
	}
	if got := snapB.Counters["pl_cluster_peer_updates_total"]; got == 0 {
		t.Error("surviving router applied no peer updates")
	}
	t.Logf("failover: resent=%d dups=%d survivorForwarded=%d survivorRoutes=%d peerUpdates=%d",
		resent, dups,
		snapB.Counters["pl_cluster_chunks_forwarded_total"],
		stB.Routes, snapB.Counters["pl_cluster_peer_updates_total"])
}
