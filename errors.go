package passivelight

import (
	"passivelight/internal/decoder"
	"passivelight/internal/frontend"
	"passivelight/internal/stream"
)

// Typed sentinel errors surfaced by the Pipeline API (and by the
// deprecated free functions, which share the same underlying
// implementations). Match with errors.Is; every layer wraps rather
// than rewrites, so a Pipeline event error, a stream Detection error
// and a batch Decode error all unwrap to the same sentinels.
var (
	// ErrNoPreamble means the decoder could not locate the A/B/C
	// preamble anchors (first two peaks and first valley) in a trace
	// or stream segment.
	ErrNoPreamble = decoder.ErrNoPreamble
	// ErrLowContrast means the preamble was found but the HIGH/LOW
	// excursion is too small to decode reliably (the paper's
	// undecodable 100 lux RX-LED case).
	ErrLowContrast = decoder.ErrLowContrast
	// ErrSaturated means every candidate receiver rails at the given
	// ambient level (SelectReceiver, WithReceiverAutoSelect).
	ErrSaturated = frontend.ErrSaturated
	// ErrSessionEvicted means the streaming engine no longer tracks
	// the addressed session: it was never fed, ended explicitly, or
	// idle-evicted.
	ErrSessionEvicted = stream.ErrSessionEvicted
	// ErrSessionTableFull means the engine already tracks MaxSessions
	// sessions and a chunk addressed a new one — the oversubscription
	// signal a load run hits when WithMaxSessions is undersized for
	// the fleet (raise it, or let WithIdleTimeout evict idle sessions
	// between staggered arrivals).
	ErrSessionTableFull = stream.ErrSessionTableFull
	// ErrEngineClosed means the streaming engine (or the Pipeline on
	// top of it) has shut down and refuses further work.
	ErrEngineClosed = stream.ErrEngineClosed
)
